"""The multi-tenant HTTP + job-queue server over the Session API.

:class:`ReproServer` hosts one shared :class:`~repro.api.Session` — one
evaluation engine, one memoization cache, one result store, one physical
macro library — behind a stdlib-only HTTP front end and a worker-thread
pool fed by a :class:`~repro.serve.jobs.JobQueue`.  Every tenant's
requests are the same typed envelopes :func:`repro.api.request_from_dict`
already validates, so the wire protocol is exactly the documented JSON
request catalogue plus a thin job wrapper.

Endpoints (``docs/serving.md`` is the full protocol reference):

* ``POST /v1/submit`` — enqueue ``{"request": {...}, "tenant", "priority",
  "stream"}``; replies ``202`` with the job id.  Rejections reuse the
  library's structured errors: validation failures map through
  :data:`repro.errors.HTTP_STATUS_BY_CODE`, rate-limited tenants get
  ``429`` with ``Retry-After``.
* ``GET /v1/jobs/<id>`` — status (and the result envelope once done);
  ``POST /v1/jobs/<id>/cancel`` / ``DELETE /v1/jobs/<id>`` — cancel.
* ``GET /v1/stream/<id>`` — Server-Sent Events: campaign jobs emit one
  event per committed generation (the stepwise NSGA-II loop), every job
  emits a terminal ``end`` event.  Streams are cursors over an
  append-only per-job event log, so a dropped client reconnects with
  ``?after=<cursor>`` and misses nothing — and the *job* never notices:
  campaigns keep stepping server-side, checkpointed in the store.
* ``GET /v1/metrics`` — the session's metric registry snapshot, engine
  stats, queue occupancy and per-tenant rate-limit levels.
* ``GET /v1/healthz`` — liveness/drain state.

Concurrency model: estimation/exploration/query workloads run fully
concurrently on the shared engine (its cache, metrics and write-behind
store buffer are thread-safe); physical workloads (``flow``/``layout``)
serialize on one internal lock because the macro library mutates shared
layout state.  Per-tenant fairness is enforced by the queue's bounded
concurrency, admission by token-bucket rate limits.

Shutdown: :meth:`ReproServer.shutdown` (or SIGTERM through ``repro
serve``) stops admission, drains queued and in-flight jobs, then closes
the session — flushing the engine's write-behind batch so every computed
evaluation is durable before exit.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass, field, fields
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.api import CampaignRequest, Session, SessionConfig, request_from_dict
from repro.api.results import ApiResult
from repro.errors import (
    RateLimitError,
    ReproError,
    RequestError,
    ServeError,
    http_status_of,
)
from repro.obs import get_tracer
from repro.serve.jobs import DEFAULT_MAX_PER_TENANT, Job, JobQueue
from repro.serve.ratelimit import TenantRateLimiter

#: Seconds between SSE keep-alive comments on an idle stream.
STREAM_KEEPALIVE_SECONDS = 5.0

#: Tenant used when a submission names none.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class ServerConfig:
    """Serializable configuration of one server instance.

    Attributes:
        host / port: bind address (``port=0`` picks an ephemeral port —
            the tests and the benchmark use that).
        workers: job-executor threads (concurrent jobs server-wide).
        session: the shared :class:`~repro.api.SessionConfig` (or its
            dict form) every job runs against.
        max_per_tenant: concurrently *running* jobs allowed per tenant.
        rate_limit: admission rate per tenant in requests/second
            (``None``: unlimited).
        rate_burst: token-bucket capacity (``None``: one second's worth).
        retention: finished jobs retained for status/stream reads.
    """

    host: str = "127.0.0.1"
    port: int = 8433
    workers: int = 4
    session: SessionConfig = field(default_factory=SessionConfig)
    max_per_tenant: int = DEFAULT_MAX_PER_TENANT
    rate_limit: Optional[float] = None
    rate_burst: Optional[float] = None
    retention: int = 4096

    def validate(self) -> "ServerConfig":
        """Raise a structured error when invalid; returns ``self``."""
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ServeError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if not isinstance(self.port, int) or not 0 <= self.port <= 65535:
            raise ServeError(f"port must be 0..65535, got {self.port!r}")
        if not isinstance(self.max_per_tenant, int) or self.max_per_tenant < 1:
            raise ServeError(
                "max_per_tenant must be a positive integer, "
                f"got {self.max_per_tenant!r}"
            )
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ServeError(
                f"rate_limit must be positive, got {self.rate_limit!r}"
            )
        if self.rate_burst is not None and self.rate_burst <= 0:
            raise ServeError(
                f"rate_burst must be positive, got {self.rate_burst!r}"
            )
        self._session_config()
        return self

    def _session_config(self) -> SessionConfig:
        session = self.session
        if isinstance(session, dict):
            session = SessionConfig.from_dict(session)
        return session.validate()

    def to_dict(self) -> dict:
        """Serializable dictionary (the ``from_dict`` twin)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["session"] = self._session_config().to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServerConfig":
        """Build (and validate) a config from a plain dictionary."""
        if not isinstance(data, dict):
            raise RequestError(
                f"server config must be a dict, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise RequestError(
                f"unknown server config field(s) {', '.join(unknown)}",
                field=unknown[0],
            )
        data = dict(data)
        if isinstance(data.get("session"), dict):
            data["session"] = SessionConfig.from_dict(data["session"])
        try:
            config = cls(**data)
        except TypeError as error:
            raise RequestError(f"cannot build ServerConfig: {error}")
        return config.validate()


def error_envelope(kind: str, error: BaseException) -> dict:
    """The serialized ``status="error"`` result envelope of a failure.

    The same shape the CLI's ``--json`` error path emits, so every
    transport reports failures identically.
    """
    if isinstance(error, ReproError):
        record = error.as_dict()
    else:
        record = {
            "code": "internal",
            "error": type(error).__name__,
            "message": str(error),
        }
    return ApiResult(
        kind=kind, status="error", payload={"error": record}
    ).to_dict()


class ReproServer:
    """Multi-tenant job server over one shared :class:`Session`.

    Args:
        config: server settings; ``config.session`` describes the shared
            substrate (set ``store`` there to enable campaign streaming
            and cross-tenant warm-start).
        session: externally owned session to serve instead of building
            one (never closed by this server).

    Lifecycle: :meth:`start` binds and spins up the pool, :meth:`shutdown`
    drains and releases; the instance is a context manager.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        session: Optional[Session] = None,
    ) -> None:
        self.config = (config or ServerConfig()).validate()
        self._owns_session = session is None
        self.session = session or Session.from_config(
            self.config._session_config()
        )
        self.queue = JobQueue(
            max_per_tenant=self.config.max_per_tenant,
            retention=self.config.retention,
        )
        self.limiter = TenantRateLimiter(
            self.config.rate_limit, self.config.rate_burst
        )
        self.metrics = self.session.metrics
        self._m_submitted = self.metrics.counter("serve.jobs.submitted")
        self._m_done = self.metrics.counter("serve.jobs.done")
        self._m_failed = self.metrics.counter("serve.jobs.failed")
        self._m_cancelled = self.metrics.counter("serve.jobs.cancelled")
        self._m_rate_limited = self.metrics.counter("serve.rate_limited")
        self._m_http = self.metrics.counter("serve.http.requests")
        self._m_job_seconds = self.metrics.histogram("serve.job.seconds")
        self._m_wait_seconds = self.metrics.histogram("serve.queue.wait_seconds")
        self._m_generations = self.metrics.counter("serve.stream.generations")
        # The physical pipeline's macro library mutates shared state;
        # flow/layout jobs serialize on this lock (everything else runs
        # concurrently on the thread-safe engine substrate).
        self._physical_lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._workers: list = []
        self._draining = False
        self._stopped = threading.Event()
        self._started_at = time.time()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ReproServer":
        """Bind the HTTP listener and start the worker pool."""
        if self._httpd is not None:
            return self
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        self._started_at = time.time()
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._httpd is None:
            return self.config.port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients talk to."""
        return f"http://{self.config.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Signal-handler-safe shutdown trigger (e.g. SIGTERM): stops
        admission immediately; :meth:`wait` performs the actual drain."""
        self._draining = True
        self.queue.close()
        self._stopped.set()

    def wait(self) -> None:
        """Block until :meth:`request_shutdown` fires, then drain."""
        self._stopped.wait()
        self.shutdown()

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission, drain in-flight jobs, release everything.

        Args:
            drain: finish queued and running jobs first; ``False``
                instead requests cancellation of every live job (queued
                ones are withdrawn, running campaigns stop at their next
                generation checkpoint, resumable).
            timeout: bound on the drain wait (None: wait for completion).
        """
        self._draining = True
        self.queue.close()
        if not drain:
            for job_id in list(self.queue._jobs):
                try:
                    self.queue.cancel(job_id)
                except ServeError:
                    pass
        self.queue.drain(timeout)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        if self._owns_session:
            self.session.close()
        else:
            self.session.engine.flush_store()
        self._stopped.set()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission (transport-independent core) -------------------------------

    def submit(
        self,
        request: dict,
        tenant: str = DEFAULT_TENANT,
        priority: int = 0,
        stream: bool = False,
    ) -> Job:
        """Validate, rate-limit and enqueue one request document.

        Raises the library's structured errors on rejection (the HTTP
        layer maps them through :data:`HTTP_STATUS_BY_CODE`); on success
        the job is queued and will be claimed by a worker thread.
        """
        if self._draining:
            raise ServeError("server is draining; not accepting requests")
        if not tenant or not isinstance(tenant, str):
            raise RequestError(
                f"tenant must be a non-empty string, got {tenant!r}",
                field="tenant",
            )
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise RequestError(
                f"priority must be an integer, got {priority!r}",
                field="priority",
            )
        try:
            self.limiter.admit(tenant)
        except RateLimitError:
            self._m_rate_limited.inc()
            raise
        # Full envelope validation up front: a malformed request never
        # occupies a queue slot, and the submitter gets the structured
        # error synchronously.
        validated = request_from_dict(request)
        job = self.queue.submit(
            tenant, validated.to_dict(), priority=priority, stream=stream
        )
        self._m_submitted.inc()
        return job

    def cancel(self, job_id: str) -> dict:
        """Cancel a job by id (see :meth:`JobQueue.cancel`)."""
        return self.queue.cancel(job_id)

    # -- job execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.claim(timeout=0.25)
            if job is None:
                if self._draining:
                    return
                continue
            try:
                self._execute(job)
            finally:
                self.queue.release(job)

    def _execute(self, job: Job) -> None:
        started = time.perf_counter()
        self._m_wait_seconds.observe(
            max(0.0, (job.started_at or job.created_at) - job.created_at)
        )
        tracer = get_tracer()
        with tracer.span(
            "serve.job",
            job_id=job.id,
            tenant=job.tenant,
            kind=job.request.get("kind"),
        ):
            try:
                if job.cancel_event.is_set():
                    job.cancelled()
                    self._m_cancelled.inc()
                    return
                if job.stream:
                    job.add_event({
                        "event": "start",
                        "job_id": job.id,
                        "kind": job.request.get("kind"),
                    })
                request = request_from_dict(job.request)
                if (
                    isinstance(request, CampaignRequest)
                    and request.stop_after is None
                ):
                    self._execute_campaign_stepwise(job, request)
                else:
                    if request.kind in ("flow", "layout"):
                        with self._physical_lock:
                            result = self.session.submit(request)
                    else:
                        result = self.session.submit(request)
                    job.complete(result.to_dict())
                    self._m_done.inc()
            except ReproError as error:
                job.fail(error.as_dict())
                self._m_failed.inc()
            except Exception as error:  # internal bug: report, keep serving
                job.fail(error_envelope(job.request.get("kind", "?"), error)
                         ["payload"]["error"])
                self._m_failed.inc()
            finally:
                self._m_job_seconds.observe(time.perf_counter() - started)

    def _execute_campaign_stepwise(
        self, job: Job, request: CampaignRequest
    ) -> None:
        """Drive a campaign generation-by-generation on the stepwise API.

        Each step is one ``stop_after=1`` drive through the session's
        existing checkpoint/resume path: the generation commits to the
        store before its progress event is emitted, so everything a
        stream reports is durable, cancellation between generations
        leaves an interrupted-but-resumable campaign (identical to a
        killed process), and the finished Pareto set is bit-identical to
        an uninterrupted :meth:`Session.submit` of the same request —
        resuming from a checkpoint replays the exact RNG/population
        state.
        """
        step = dataclasses.replace(request, stop_after=1)
        while True:
            if job.cancel_event.is_set():
                job.cancelled(result=None)
                self._m_cancelled.inc()
                return
            result = self.session.submit(step)
            payload = result.payload
            self._m_generations.inc()
            if job.stream:
                job.add_event({
                    "event": "generation",
                    "campaign": payload["name"],
                    "generations_done": payload["generations_done"],
                    "total_generations": payload["total_generations"],
                    "evaluations": payload["evaluations"],
                    "campaign_status": payload["campaign_status"],
                })
            if payload["campaign_status"] == "completed":
                job.complete(result.to_dict())
                self._m_done.inc()
                return
            # Continue the committed checkpoint; the original action may
            # have been "run", every subsequent leg is a resume.
            step = CampaignRequest(
                name=request.name, action="resume", stop_after=1,
                checkpoint_every=request.checkpoint_every,
            )

    # -- documents -------------------------------------------------------------

    def healthz(self) -> dict:
        """The ``/v1/healthz`` document."""
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "workers": self.config.workers,
            "jobs": self.queue.stats(),
        }

    def metrics_document(self) -> dict:
        """The ``/v1/metrics`` document."""
        return {
            "server": {
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "draining": self._draining,
                "jobs": self.queue.stats(),
                "rate_limit": {
                    "requests_per_second": self.config.rate_limit,
                    "burst": self.limiter.burst,
                    "tenant_tokens": self.limiter.levels(),
                },
            },
            "engine_stats": self.session.engine.stats.as_dict(),
            "metrics": self.metrics.snapshot(),
        }


# -- the HTTP face -------------------------------------------------------------


def _make_handler(app: ReproServer):
    """Bind a request-handler class to one server instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        # -- plumbing -----------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # metrics, not stderr, carry request accounting

        def _send_json(
            self,
            status: int,
            document: dict,
            extra_headers: Tuple[Tuple[str, str], ...] = (),
        ) -> None:
            body = json.dumps(document, indent=2).encode("utf-8") + b"\n"
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in extra_headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_error_envelope(self, kind: str, error: BaseException) -> None:
            headers: Tuple[Tuple[str, str], ...] = ()
            if isinstance(error, RateLimitError):
                headers = (
                    ("Retry-After", f"{max(1, round(error.retry_after_seconds))}"),
                )
            self._send_json(
                http_status_of(error), error_envelope(kind, error), headers
            )

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                document = json.loads(raw.decode("utf-8"))
            except ValueError as error:
                raise RequestError(f"request body is not valid JSON: {error}")
            if not isinstance(document, dict):
                raise RequestError(
                    f"request body must be a JSON object, "
                    f"got {type(document).__name__}"
                )
            return document

        # -- routing ------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            app._m_http.inc()
            parsed = urlparse(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            try:
                if parts == ["v1", "healthz"]:
                    self._send_json(200, app.healthz())
                elif parts == ["v1", "metrics"]:
                    self._send_json(200, app.metrics_document())
                elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                    self._send_json(200, app.queue.get(parts[2]).describe())
                elif len(parts) == 3 and parts[:2] == ["v1", "stream"]:
                    self._stream(parts[2], parsed.query)
                else:
                    self._send_json(404, error_envelope(
                        "http", ServeError(f"no route GET {parsed.path}")
                    ))
            except ServeError as error:
                self._send_json(404, error_envelope("http", error))
            except ReproError as error:
                self._send_error_envelope("http", error)

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            app._m_http.inc()
            parsed = urlparse(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            try:
                if parts == ["v1", "submit"]:
                    body = self._read_body()
                    request = body.get("request")
                    if not isinstance(request, dict):
                        raise RequestError(
                            "submit body needs a 'request' object "
                            "(the typed request envelope)",
                            field="request",
                        )
                    job = app.submit(
                        request,
                        tenant=body.get("tenant", DEFAULT_TENANT),
                        priority=body.get("priority", 0),
                        stream=bool(body.get("stream", False)),
                    )
                    self._send_json(202, {
                        "job_id": job.id,
                        "state": job.state,
                        "tenant": job.tenant,
                        "priority": job.priority,
                        "stream": job.stream,
                    })
                elif (
                    len(parts) == 4
                    and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "cancel"
                ):
                    self._send_json(200, app.cancel(parts[2]))
                else:
                    self._send_json(404, error_envelope(
                        "http", ServeError(f"no route POST {parsed.path}")
                    ))
            except ReproError as error:
                self._send_error_envelope("http", error)

        def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
            app._m_http.inc()
            parts = [p for p in urlparse(self.path).path.split("/") if p]
            try:
                if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                    self._send_json(200, app.cancel(parts[2]))
                else:
                    self._send_json(404, error_envelope(
                        "http", ServeError(f"no route DELETE {self.path}")
                    ))
            except ReproError as error:
                self._send_error_envelope("http", error)

        # -- SSE ----------------------------------------------------------

        def _stream(self, job_id: str, query: str) -> None:
            job = app.queue.get(job_id)
            params = parse_qs(query)
            cursor = 0
            if "after" in params:
                try:
                    cursor = max(0, int(params["after"][0]))
                except ValueError:
                    raise RequestError(
                        f"after must be an integer event cursor, "
                        f"got {params['after'][0]!r}",
                        field="after",
                    )
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            # Until-close framing: no Content-Length, the event stream
            # ends when the job does.
            self.send_header("Connection", "close")
            self.end_headers()
            app.metrics.counter("serve.stream.clients").inc()
            try:
                while True:
                    events, cursor = job.events_after(
                        cursor, timeout=STREAM_KEEPALIVE_SECONDS
                    )
                    if not events:
                        if job.finished:
                            return
                        self.wfile.write(b": keep-alive\n\n")
                        self.wfile.flush()
                        continue
                    for index, event in enumerate(events):
                        event_id = cursor - len(events) + index + 1
                        frame = (
                            f"id: {event_id}\n"
                            f"event: {event.get('event', 'message')}\n"
                            f"data: {json.dumps(event)}\n\n"
                        )
                        self.wfile.write(frame.encode("utf-8"))
                    self.wfile.flush()
                    if any(e.get("event") == "end" for e in events):
                        return
            except (BrokenPipeError, ConnectionResetError):
                # Client went away mid-stream; the job keeps running and
                # a reconnect replays from any cursor.
                app.metrics.counter("serve.stream.disconnects").inc()

    return Handler
