"""CMOS switch (transmission gate).

The architecture inserts a CMOS switch in the read bitline to disconnect
the surplus compute capacitors (those beyond the 2^B_ADC needed by the
CDAC) once charge redistribution has completed, saving conversion energy
(paper section 3.1).  The same template is also used for the V_CM reset
switches in generated peripheral logic.

Pins:
    A, B      — the two switched terminals,
    EN, ENB   — complementary enables,
    VDD, VSS  — supplies (bulk connections).
"""

from __future__ import annotations

from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Mosfet, MosType
from repro.technology.tech import Technology


class CmosSwitchCell(CellTemplate):
    """Template of a CMOS transmission-gate switch."""

    cell_name = "cmos_switch"

    def __init__(self, height_dbu: int = 600, width_dbu: int = 2000) -> None:
        super().__init__(height_dbu, width_dbu)

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("A", PinDirection.INOUT),
            Pin("B", PinDirection.INOUT),
            Pin("EN", PinDirection.INPUT),
            Pin("ENB", PinDirection.INPUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        circuit.add_device(Mosfet(
            "MN", mos_type=MosType.NMOS, width=400e-9, length=30e-9,
            terminals={"D": "A", "G": "EN", "S": "B", "B": "VSS"},
        ))
        circuit.add_device(Mosfet(
            "MP", mos_type=MosType.PMOS, width=600e-9, length=30e-9,
            terminals={"D": "A", "G": "ENB", "S": "B", "B": "VDD"},
        ))
        return circuit

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        mid = height // 2
        cell.add_shape("DIFF", Rect(300, 120, width - 300, mid - 60))
        cell.add_shape("NWELL", Rect(250, mid, width - 250, height - 100))
        cell.add_shape("DIFF", Rect(300, mid + 60, width - 300, height - 120))
        cell.add_shape("POLY", Rect(width // 2 - 40, 100, width // 2 + 40, height - 100))
        cell.add_pin("A", "M2", Rect(350, 100, 450, height - 100), direction="inout")
        cell.add_pin("B", "M2", Rect(width - 450, 100, width - 350, height - 100),
                     direction="inout")
        cell.add_pin("EN", "M1", Rect(0, mid - 150, 200, mid - 80), direction="input")
        cell.add_pin("ENB", "M1", Rect(0, mid + 80, 200, mid + 150), direction="input")
