"""Peripheral CIM input and output buffers.

The synthesizable architecture drives the read word lines (activations)
through a per-row input buffer and captures the per-column digital results
through an output buffer (paper Figure 6, "CIM Input Buffer" / "CIM Output
Buffer").  Both are modelled as two-stage inverter buffers; they sit on the
macro periphery and are not part of the Equation-10 per-bit area.
"""

from __future__ import annotations

from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Mosfet, MosType
from repro.technology.tech import Technology


class _BufferCell(CellTemplate):
    """Shared implementation of the two-stage inverter buffer."""

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("IN", PinDirection.INPUT),
            Pin("OUT", PinDirection.OUTPUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        devices = [
            Mosfet("MP1", mos_type=MosType.PMOS, width=300e-9, length=30e-9,
                   terminals={"D": "MID", "G": "IN", "S": "VDD", "B": "VDD"}),
            Mosfet("MN1", mos_type=MosType.NMOS, width=200e-9, length=30e-9,
                   terminals={"D": "MID", "G": "IN", "S": "VSS", "B": "VSS"}),
            Mosfet("MP2", mos_type=MosType.PMOS, width=900e-9, length=30e-9,
                   terminals={"D": "OUT", "G": "MID", "S": "VDD", "B": "VDD"}),
            Mosfet("MN2", mos_type=MosType.NMOS, width=600e-9, length=30e-9,
                   terminals={"D": "OUT", "G": "MID", "S": "VSS", "B": "VSS"}),
        ]
        for device in devices:
            circuit.add_device(device)
        return circuit

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        mid = height // 2
        cell.add_shape("DIFF", Rect(200, 150, width - 200, mid - 80))
        cell.add_shape("NWELL", Rect(150, mid, width - 150, height - 120))
        cell.add_shape("DIFF", Rect(200, mid + 80, width - 200, height - 150))
        cell.add_shape("POLY", Rect(width // 3 - 40, 120, width // 3 + 40, height - 120))
        cell.add_shape("POLY", Rect(2 * width // 3 - 40, 120, 2 * width // 3 + 40,
                                    height - 120))
        cell.add_pin("IN", "M1", Rect(0, mid - 50, 200, mid + 50), direction="input")
        cell.add_pin("OUT", "M2", Rect(width - 300, mid - 50, width - 200, mid + 50),
                     direction="output")


class InputBufferCell(_BufferCell):
    """Per-row activation (read word line) driver."""

    cell_name = "input_buffer"

    def __init__(self, height_dbu: int = 632, width_dbu: int = 2000) -> None:
        super().__init__(height_dbu, width_dbu)


class OutputBufferCell(_BufferCell):
    """Per-column digital output buffer."""

    cell_name = "output_buffer"

    def __init__(self, height_dbu: int = 2000, width_dbu: int = 2000) -> None:
        super().__init__(height_dbu, width_dbu)
