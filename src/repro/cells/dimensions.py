"""Cell footprints derived from the calibrated area model.

The layout flow and the analytical area model (Equation 10) must agree, so
cell heights are *computed* from the same calibrated area constants rather
than being independent magic numbers: every cell spans the common column
width and its height is ``area_F2 * F^2 / column_width``.  With the default
(Figure-8 calibrated) :class:`~repro.model.area.AreaParameters` this puts a
128x128, L=8, B=3 macro at roughly 256 um x 131 um — the published size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CellLibraryError
from repro.cells.base import COLUMN_WIDTH_DBU
from repro.model.area import AreaParameters
from repro.units import DBU_PER_UM


@dataclass(frozen=True)
class CellFootprints:
    """Heights (in dbu) of every column-pitched cell of the library.

    Attributes:
        column_width: common cell width in dbu.
        sram: 8T SRAM cell height.
        local_compute: local-array shared computing cell height (compute
            capacitor plus group-control switches).
        comparator: dynamic comparator / sense-amplifier height.
        sar_dff: single SAR-logic flip-flop height.
        io_buffer: input/output buffer strip thickness.
    """

    column_width: int
    sram: int
    local_compute: int
    comparator: int
    sar_dff: int
    io_buffer: int

    def __post_init__(self) -> None:
        for name in ("column_width", "sram", "local_compute", "comparator",
                     "sar_dff", "io_buffer"):
            if getattr(self, name) <= 0:
                raise CellLibraryError(f"footprint {name} must be positive")

    def column_height(self, height: int, local_array_size: int, adc_bits: int) -> int:
        """Height in dbu of one full column for a design point.

        A column stacks H SRAM cells, H/L local compute cells, one
        comparator and B_ADC SAR flip-flops.
        """
        if height % local_array_size != 0:
            raise CellLibraryError("H must be a multiple of L")
        local_arrays = height // local_array_size
        return (
            height * self.sram
            + local_arrays * self.local_compute
            + self.comparator
            + adc_bits * self.sar_dff
        )

    @classmethod
    def from_area_parameters(
        cls,
        parameters: AreaParameters = AreaParameters(),
        column_width_dbu: int = COLUMN_WIDTH_DBU,
        io_buffer_dbu: int = 2000,
    ) -> "CellFootprints":
        """Derive the footprints from Equation-10 area constants.

        Args:
            parameters: calibrated area constants in F^2.
            column_width_dbu: the common column pitch in dbu.
            io_buffer_dbu: thickness of the peripheral buffer strips, which
                sit outside the Equation-10 per-bit area (macro periphery).
        """
        feature_um = parameters.feature_size / 1e-6
        column_width_um = column_width_dbu / DBU_PER_UM

        def height_dbu(area_f2: float) -> int:
            area_um2 = area_f2 * feature_um * feature_um
            height_um = area_um2 / column_width_um
            return max(1, int(round(height_um * DBU_PER_UM)))

        return cls(
            column_width=column_width_dbu,
            sram=height_dbu(parameters.a_sram),
            local_compute=height_dbu(parameters.a_local_compute),
            comparator=height_dbu(parameters.a_comparator),
            sar_dff=height_dbu(parameters.a_dff),
            io_buffer=io_buffer_dbu,
        )
