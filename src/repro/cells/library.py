"""The aggregated customized cell library.

:class:`CellLibrary` is one of the three inputs of the EasyACIM flow
(paper Figure 4): it provides the netlists of all ACIM components and the
layout templates of the critical ones.  :func:`default_cell_library` builds
the library with footprints derived from the calibrated Equation-10 area
constants so the layout flow and the analytic area model stay consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CellLibraryError
from repro.cells.base import CellTemplate, COLUMN_WIDTH_DBU
from repro.cells.capacitor import ComputeCapacitorCell
from repro.cells.comparator import DynamicComparatorCell
from repro.cells.dimensions import CellFootprints
from repro.cells.io_buffer import InputBufferCell, OutputBufferCell
from repro.cells.local_compute import LocalComputeCell
from repro.cells.sar_logic import SarControlCell, SarDffCell
from repro.cells.sense_amp import SenseAmplifierCell
from repro.cells.sram8t import Sram8TCell
from repro.cells.switches import CmosSwitchCell
from repro.layout.layout import LayoutCell
from repro.model.area import AreaParameters
from repro.netlist.circuit import Circuit
from repro.technology.tech import Technology


class CellLibrary:
    """A named collection of :class:`~repro.cells.base.CellTemplate` objects."""

    def __init__(self, name: str, technology: Technology) -> None:
        if not name:
            raise CellLibraryError("library name must be non-empty")
        self.name = name
        self.technology = technology
        self._templates: Dict[str, CellTemplate] = {}
        self._layout_cache: Dict[str, LayoutCell] = {}

    # -- registration -----------------------------------------------------------

    def register(self, template: CellTemplate) -> CellTemplate:
        """Add a template to the library (names must be unique)."""
        if template.cell_name in self._templates:
            raise CellLibraryError(
                f"library {self.name!r} already has a cell {template.cell_name!r}"
            )
        self._templates[template.cell_name] = template
        return template

    def has_cell(self, name: str) -> bool:
        """True when the library provides a cell called ``name``."""
        return name in self._templates

    @property
    def cell_names(self) -> List[str]:
        """All registered cell names."""
        return list(self._templates)

    def template(self, name: str) -> CellTemplate:
        """Return the registered template called ``name``."""
        try:
            return self._templates[name]
        except KeyError:
            raise CellLibraryError(
                f"library {self.name!r} provides no cell {name!r}; "
                f"available: {sorted(self._templates)}"
            )

    # -- views -----------------------------------------------------------------

    def netlist(self, name: str) -> Circuit:
        """The netlist view of a cell."""
        return self.template(name).netlist()

    def layout(self, name: str) -> LayoutCell:
        """The layout view of a cell (cached per library)."""
        if name not in self._layout_cache:
            self._layout_cache[name] = self.template(name).layout(self.technology)
        return self._layout_cache[name]

    # -- consistency -------------------------------------------------------------

    def check_consistency(self) -> List[str]:
        """Cross-check the netlist and layout views of every cell.

        Returns a list of human-readable problems (empty when consistent):
        every netlist pin must have a matching layout pin so the
        hierarchical router can always find an access point.
        """
        problems: List[str] = []
        for name in self.cell_names:
            netlist_pins = {pin.name for pin in self.netlist(name).pins}
            layout = self.layout(name)
            layout_pins = {pin.name for pin in layout.pins}
            missing = netlist_pins - layout_pins
            if missing:
                problems.append(
                    f"cell {name!r}: netlist pins {sorted(missing)} missing from layout"
                )
            if layout.boundary is None or layout.boundary.area <= 0:
                problems.append(f"cell {name!r}: empty or missing PR boundary")
        return problems

    def report(self) -> str:
        """Multi-line summary of the library contents."""
        lines = [f"Cell library {self.name!r} ({self.technology.name}):"]
        for name in sorted(self.cell_names):
            lines.append("  " + self.template(name).describe())
        return "\n".join(lines)


def default_cell_library(
    technology: Technology,
    area_parameters: Optional[AreaParameters] = None,
    footprints: Optional[CellFootprints] = None,
) -> CellLibrary:
    """Build the default EasyACIM cell library for ``technology``.

    Cell heights come from :class:`~repro.cells.dimensions.CellFootprints`
    (derived from the calibrated area constants) and the compute-capacitor
    value from the technology's electrical parameters.
    """
    footprints = footprints or CellFootprints.from_area_parameters(
        area_parameters or AreaParameters(feature_size=technology.feature_size),
    )
    unit_cap = technology.electrical.unit_capacitance
    library = CellLibrary("easyacim_default", technology)
    library.register(Sram8TCell(footprints.sram, footprints.column_width))
    library.register(ComputeCapacitorCell(
        height_dbu=max(600, footprints.local_compute // 3),
        width_dbu=footprints.column_width,
        capacitance=unit_cap,
    ))
    library.register(LocalComputeCell(
        footprints.local_compute, footprints.column_width, capacitance=unit_cap,
    ))
    library.register(SenseAmplifierCell(width_dbu=footprints.column_width))
    library.register(DynamicComparatorCell(
        footprints.comparator, footprints.column_width,
    ))
    library.register(SarDffCell(footprints.sar_dff, footprints.column_width))
    library.register(CmosSwitchCell(width_dbu=footprints.column_width))
    library.register(InputBufferCell(
        height_dbu=footprints.sram, width_dbu=footprints.io_buffer,
    ))
    library.register(OutputBufferCell(
        height_dbu=footprints.io_buffer, width_dbu=footprints.column_width,
    ))
    return library


def sar_controller_for(library: CellLibrary, bits: int) -> SarControlCell:
    """Build the parameterised SAR controller using the library's flip-flop."""
    dff = library.template("sar_dff")
    if not isinstance(dff, SarDffCell):
        raise CellLibraryError("library cell 'sar_dff' is not a SarDffCell")
    return SarControlCell(dff, bits)
