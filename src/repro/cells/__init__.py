"""The customized cell library (paper Figure 4, left input).

Every ACIM component is provided as a :class:`~repro.cells.base.CellTemplate`
that can produce both a SPICE-level netlist (:class:`repro.netlist.Circuit`)
and a layout template (:class:`repro.layout.LayoutCell`) on a given
technology.  The layout footprints are pitch-matched to a common column
width and their heights are derived from the calibrated Equation-10 area
constants, so the generated macros land on the paper's published Figure-8
dimensions.

:class:`~repro.cells.library.CellLibrary` aggregates the templates and is
the object handed to the netlist generator and the hierarchical placer.
"""

from repro.cells.base import CellTemplate, COLUMN_WIDTH_DBU
from repro.cells.dimensions import CellFootprints
from repro.cells.sram8t import Sram8TCell
from repro.cells.capacitor import ComputeCapacitorCell
from repro.cells.local_compute import LocalComputeCell
from repro.cells.sense_amp import SenseAmplifierCell
from repro.cells.comparator import DynamicComparatorCell
from repro.cells.sar_logic import SarDffCell, SarControlCell
from repro.cells.switches import CmosSwitchCell
from repro.cells.io_buffer import InputBufferCell, OutputBufferCell
from repro.cells.library import CellLibrary, default_cell_library

__all__ = [
    "CellTemplate",
    "COLUMN_WIDTH_DBU",
    "CellFootprints",
    "Sram8TCell",
    "ComputeCapacitorCell",
    "LocalComputeCell",
    "SenseAmplifierCell",
    "DynamicComparatorCell",
    "SarDffCell",
    "SarControlCell",
    "CmosSwitchCell",
    "InputBufferCell",
    "OutputBufferCell",
    "CellLibrary",
    "default_cell_library",
]
