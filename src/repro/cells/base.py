"""Base class and shared conventions of the cell library.

All library cells are pitch-matched to a common **column width** so that a
column of the synthesizable architecture stacks them vertically without
horizontal gaps: 8T SRAM cells, the local-array shared computing cell, the
comparator and the SAR flip-flops all span the same width, exactly like a
hand-crafted CIM column.  Cell heights are supplied per cell (derived from
the calibrated area constants, see :mod:`repro.cells.dimensions`).

Every template produces:

* ``netlist()`` — a :class:`repro.netlist.Circuit` with real devices, so
  device counts, total capacitance and SPICE export are meaningful,
* ``layout(technology)`` — a :class:`repro.layout.LayoutCell` with a PR
  boundary, supply rails, a small amount of representative internal
  geometry and the pins the router needs.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CellLibraryError
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit
from repro.technology.tech import Technology

#: Common column pitch of the library in dbu (2.0 um at the generic28 node).
COLUMN_WIDTH_DBU = 2000


class CellTemplate:
    """Base class of all library cell templates.

    Subclasses must set :attr:`cell_name`, implement :meth:`build_netlist`
    and :meth:`build_layout_content`, and pass their footprint height to the
    constructor.
    """

    #: Unique library name of the cell (overridden by subclasses).
    cell_name = "cell"

    def __init__(self, height_dbu: int, width_dbu: int = COLUMN_WIDTH_DBU) -> None:
        if height_dbu <= 0 or width_dbu <= 0:
            raise CellLibraryError(
                f"{self.cell_name}: cell footprint must be positive"
            )
        self.height_dbu = height_dbu
        self.width_dbu = width_dbu
        self._netlist_cache: Optional[Circuit] = None

    # -- netlist ---------------------------------------------------------------

    def netlist(self) -> Circuit:
        """The cell's netlist (built once and cached)."""
        if self._netlist_cache is None:
            circuit = self.build_netlist()
            circuit.validate()
            self._netlist_cache = circuit
        return self._netlist_cache

    def build_netlist(self) -> Circuit:
        """Construct the cell netlist.  Subclasses must override."""
        raise NotImplementedError

    # -- layout ----------------------------------------------------------------

    def layout(self, technology: Technology) -> LayoutCell:
        """Build the layout template of the cell for ``technology``."""
        boundary = Rect(0, 0, self.width_dbu, self.height_dbu)
        cell = LayoutCell(self.cell_name, boundary=boundary)
        self._add_supply_rails(cell, technology)
        self.build_layout_content(cell, technology)
        return cell

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        """Add cell-specific geometry and pins.  Subclasses must override."""
        raise NotImplementedError

    def _add_supply_rails(self, cell: LayoutCell, technology: Technology) -> None:
        """Add the horizontal VDD (top) and VSS (bottom) rails every cell shares."""
        rail_layer = technology.layer("M1")
        rail_width = max(rail_layer.min_width, rail_layer.default_width)
        cell.add_pin(
            "VSS", "M1",
            Rect(0, 0, self.width_dbu, rail_width),
            direction="supply",
        )
        cell.add_pin(
            "VDD", "M1",
            Rect(0, self.height_dbu - rail_width, self.width_dbu, self.height_dbu),
            direction="supply",
        )

    # -- reporting ----------------------------------------------------------------

    def area_dbu2(self) -> int:
        """Footprint area in dbu^2."""
        return self.height_dbu * self.width_dbu

    def area_f2(self, technology: Technology) -> float:
        """Footprint area in squared feature sizes for ``technology``."""
        feature_dbu = technology.feature_size / 1e-9
        return self.area_dbu2() / (feature_dbu * feature_dbu)

    def describe(self) -> str:
        """One-line summary used by the library report."""
        circuit = self.netlist()
        return (
            f"{self.cell_name}: {self.width_dbu}x{self.height_dbu} dbu, "
            f"{len(circuit.devices)} devices, {len(circuit.pins)} pins"
        )
