"""The dynamic (StrongARM) comparator of the column ADC.

One comparator per column performs the B_ADC successive-approximation
comparisons against the CDAC voltage on the read bitline (paper Figure 6,
``SA`` block with COM/COMb outputs).  Its area constant A_COMP is one of
the Equation-10 terms calibrated from Figure 8.

Pins:
    INP  — read bitline (CDAC) voltage,
    INN  — comparison reference (V_CM),
    CLK  — comparison clock from the SAR controller,
    COM, COMB — regenerated decision outputs,
    VDD, VSS — supplies.
"""

from __future__ import annotations

from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Mosfet, MosType
from repro.technology.tech import Technology


class DynamicComparatorCell(CellTemplate):
    """Template of the per-column StrongARM dynamic comparator."""

    cell_name = "comparator"

    def __init__(self, height_dbu: int, width_dbu: int = 2000) -> None:
        super().__init__(height_dbu, width_dbu)

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("INP", PinDirection.INPUT),
            Pin("INN", PinDirection.INPUT),
            Pin("CLK", PinDirection.INPUT),
            Pin("COM", PinDirection.OUTPUT),
            Pin("COMB", PinDirection.OUTPUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        devices = [
            # Input differential pair on the tail clock device.
            Mosfet("MIN1", mos_type=MosType.NMOS, width=2000e-9, length=60e-9,
                   terminals={"D": "X", "G": "INP", "S": "TAIL", "B": "VSS"}),
            Mosfet("MIN2", mos_type=MosType.NMOS, width=2000e-9, length=60e-9,
                   terminals={"D": "Y", "G": "INN", "S": "TAIL", "B": "VSS"}),
            Mosfet("MTAIL", mos_type=MosType.NMOS, width=3000e-9, length=60e-9,
                   terminals={"D": "TAIL", "G": "CLK", "S": "VSS", "B": "VSS"}),
            # Cross-coupled regenerative latch.
            Mosfet("MN3", mos_type=MosType.NMOS, width=800e-9, length=30e-9,
                   terminals={"D": "COM", "G": "COMB", "S": "X", "B": "VSS"}),
            Mosfet("MN4", mos_type=MosType.NMOS, width=800e-9, length=30e-9,
                   terminals={"D": "COMB", "G": "COM", "S": "Y", "B": "VSS"}),
            Mosfet("MP3", mos_type=MosType.PMOS, width=1000e-9, length=30e-9,
                   terminals={"D": "COM", "G": "COMB", "S": "VDD", "B": "VDD"}),
            Mosfet("MP4", mos_type=MosType.PMOS, width=1000e-9, length=30e-9,
                   terminals={"D": "COMB", "G": "COM", "S": "VDD", "B": "VDD"}),
            # Precharge devices resetting the outputs every cycle.
            Mosfet("MP5", mos_type=MosType.PMOS, width=500e-9, length=30e-9,
                   terminals={"D": "COM", "G": "CLK", "S": "VDD", "B": "VDD"}),
            Mosfet("MP6", mos_type=MosType.PMOS, width=500e-9, length=30e-9,
                   terminals={"D": "COMB", "G": "CLK", "S": "VDD", "B": "VDD"}),
        ]
        for device in devices:
            circuit.add_device(device)
        return circuit

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        quarter = height // 4
        # Large input devices at the bottom (matching-critical), latch above.
        cell.add_shape("DIFF", Rect(200, 300, width - 200, quarter))
        cell.add_shape("DIFF", Rect(200, quarter + 200, width - 200, 2 * quarter))
        cell.add_shape("NWELL", Rect(150, 2 * quarter, width - 150, height - 300))
        cell.add_shape("DIFF", Rect(200, 2 * quarter + 200, width - 200, height - 400))
        cell.add_shape("POLY", Rect(200, quarter - 40, width - 200, quarter + 40))
        cell.add_shape("POLY", Rect(200, 2 * quarter - 40, width - 200, 2 * quarter + 40))
        cell.add_pin("INP", "M2", Rect(width - 400, 0, width - 300, 400),
                     direction="input")
        cell.add_pin("INN", "M2", Rect(width - 700, 0, width - 600, 400),
                     direction="input")
        cell.add_pin("CLK", "M1", Rect(0, quarter - 50, 200, quarter + 50),
                     direction="input")
        cell.add_pin("COM", "M2", Rect(300, height - 400, 400, height),
                     direction="output")
        cell.add_pin("COMB", "M2", Rect(600, height - 400, 700, height),
                     direction="output")
