"""The MOM compute capacitor C_F.

One unit compute capacitor per local array.  During the MAC state its top
plate stores the product voltage; during conversion the same capacitor
becomes one unit of the SAR CDAC (paper section 3.1) — the architectural
reuse that removes the dedicated ADC capacitor array.

Pins:
    TOP, BOT — capacitor plates,
    VDD, VSS — supplies (for the shielding rails of the MOM stack).
"""

from __future__ import annotations

from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Capacitor
from repro.technology.tech import Technology


class ComputeCapacitorCell(CellTemplate):
    """Template of the unit MOM compute capacitor."""

    cell_name = "compute_cap"

    def __init__(
        self,
        height_dbu: int = 600,
        width_dbu: int = 2000,
        capacitance: float = 1.0e-15,
    ) -> None:
        super().__init__(height_dbu, width_dbu)
        self.capacitance = capacitance

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("TOP", PinDirection.INOUT),
            Pin("BOT", PinDirection.INOUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        circuit.add_device(Capacitor(
            "CF", capacitance=self.capacitance,
            terminals={"PLUS": "TOP", "MINUS": "BOT"},
        ))
        return circuit

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        margin = 200
        # Interdigitated MOM fingers drawn on the capacitor marker layer with
        # the two plates escaping on M3.
        cell.add_shape("MOMCAP", Rect(margin, margin, width - margin, height - margin))
        finger_pitch = 200
        x = margin
        polarity = 0
        while x + 60 <= width - margin:
            net = "TOP" if polarity % 2 == 0 else "BOT"
            cell.add_shape("M3", Rect(x, margin, x + 60, height - margin), net=net)
            x += finger_pitch
            polarity += 1
        cell.add_pin("TOP", "M3", Rect(margin, height - margin - 80,
                                       width - margin, height - margin))
        cell.add_pin("BOT", "M3", Rect(margin, margin, width - margin, margin + 80))
