"""The 8T SRAM bit cell.

The storage element of the synthesizable ACIM (paper Figure 6): a standard
6T latch plus a decoupled 2-transistor read port.  The read port's stack is
gated by the read word line (RWL) and drives the local read bitline (LBL)
shared by the L cells of a local array, which is what lets the stored
weight bit multiply the broadcast activation without disturbing the cell.

Pins:
    WL, BL, BLB  — write port,
    RWL          — read word line (activation input),
    LBL          — local read bitline towards the shared computing cell,
    VDD, VSS     — supplies.
"""

from __future__ import annotations

from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Mosfet, MosType
from repro.technology.tech import Technology


class Sram8TCell(CellTemplate):
    """Template of the 8T SRAM bit cell."""

    cell_name = "sram8t"

    def __init__(self, height_dbu: int, width_dbu: int = 2000) -> None:
        super().__init__(height_dbu, width_dbu)

    # -- netlist ---------------------------------------------------------------

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("WL", PinDirection.INPUT),
            Pin("BL", PinDirection.INOUT),
            Pin("BLB", PinDirection.INOUT),
            Pin("RWL", PinDirection.INPUT),
            Pin("LBL", PinDirection.OUTPUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        # Cross-coupled inverter pair storing Q / QB.
        devices = [
            Mosfet("PU1", mos_type=MosType.PMOS, width=100e-9, length=30e-9,
                   terminals={"D": "Q", "G": "QB", "S": "VDD", "B": "VDD"}),
            Mosfet("PD1", mos_type=MosType.NMOS, width=150e-9, length=30e-9,
                   terminals={"D": "Q", "G": "QB", "S": "VSS", "B": "VSS"}),
            Mosfet("PU2", mos_type=MosType.PMOS, width=100e-9, length=30e-9,
                   terminals={"D": "QB", "G": "Q", "S": "VDD", "B": "VDD"}),
            Mosfet("PD2", mos_type=MosType.NMOS, width=150e-9, length=30e-9,
                   terminals={"D": "QB", "G": "Q", "S": "VSS", "B": "VSS"}),
            # Write access transistors.
            Mosfet("PG1", mos_type=MosType.NMOS, width=120e-9, length=30e-9,
                   terminals={"D": "BL", "G": "WL", "S": "Q", "B": "VSS"}),
            Mosfet("PG2", mos_type=MosType.NMOS, width=120e-9, length=30e-9,
                   terminals={"D": "BLB", "G": "WL", "S": "QB", "B": "VSS"}),
            # Decoupled read port: RWL-gated stack driven by the stored bit.
            Mosfet("RD1", mos_type=MosType.NMOS, width=200e-9, length=30e-9,
                   terminals={"D": "LBL", "G": "RWL", "S": "RD_INT", "B": "VSS"}),
            Mosfet("RD2", mos_type=MosType.NMOS, width=200e-9, length=30e-9,
                   terminals={"D": "RD_INT", "G": "QB", "S": "VSS", "B": "VSS"}),
        ]
        for device in devices:
            circuit.add_device(device)
        return circuit

    # -- layout ------------------------------------------------------------------

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        mid = height // 2
        # Active regions of the pull-down / pass-gate devices (left) and the
        # read stack (right), with the poly word lines crossing them.
        cell.add_shape("DIFF", Rect(150, 120, width // 2 - 100, height - 120))
        cell.add_shape("DIFF", Rect(width // 2 + 100, 120, width - 150, height - 120))
        cell.add_shape("NWELL", Rect(width // 4, mid - 150, 3 * width // 4, mid + 150))
        cell.add_shape("POLY", Rect(100, mid - 40, width - 100, mid + 40))
        # Word lines and bitline pins on the routing layers.
        cell.add_pin("WL", "M1", Rect(0, mid - 50, 200, mid + 50), direction="input")
        cell.add_pin("RWL", "M1", Rect(width - 200, mid - 50, width, mid + 50),
                     direction="input")
        cell.add_pin("BL", "M2", Rect(250, 0, 350, height), direction="inout")
        cell.add_pin("BLB", "M2", Rect(450, 0, 550, height), direction="inout")
        cell.add_pin("LBL", "M2", Rect(width - 400, 0, width - 300, height),
                     direction="output")
