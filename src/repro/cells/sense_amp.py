"""Latch-type sense amplifier (one of the paper's "manually designed" cells).

A cross-coupled latch sense amplifier with an enable tail device.  In the
EasyACIM cell library the sense amplifier is one of the critical components
whose layout is hand-crafted (paper Figure 4); here it is a template cell
like the others, kept separate from the dynamic comparator so both library
entries exist.

Pins:
    INP, INN — differential inputs,
    OUT, OUTB — latched outputs,
    EN — sense enable,
    VDD, VSS — supplies.
"""

from __future__ import annotations

from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Mosfet, MosType
from repro.technology.tech import Technology


class SenseAmplifierCell(CellTemplate):
    """Template of the latch-type sense amplifier."""

    cell_name = "sense_amp"

    def __init__(self, height_dbu: int = 3000, width_dbu: int = 2000) -> None:
        super().__init__(height_dbu, width_dbu)

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("INP", PinDirection.INPUT),
            Pin("INN", PinDirection.INPUT),
            Pin("OUT", PinDirection.OUTPUT),
            Pin("OUTB", PinDirection.OUTPUT),
            Pin("EN", PinDirection.INPUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        devices = [
            # Cross-coupled latch.
            Mosfet("MP1", mos_type=MosType.PMOS, width=400e-9, length=30e-9,
                   terminals={"D": "OUT", "G": "OUTB", "S": "VDD", "B": "VDD"}),
            Mosfet("MN1", mos_type=MosType.NMOS, width=300e-9, length=30e-9,
                   terminals={"D": "OUT", "G": "OUTB", "S": "TAIL", "B": "VSS"}),
            Mosfet("MP2", mos_type=MosType.PMOS, width=400e-9, length=30e-9,
                   terminals={"D": "OUTB", "G": "OUT", "S": "VDD", "B": "VDD"}),
            Mosfet("MN2", mos_type=MosType.NMOS, width=300e-9, length=30e-9,
                   terminals={"D": "OUTB", "G": "OUT", "S": "TAIL", "B": "VSS"}),
            # Input pass devices coupling the bitlines into the latch nodes.
            Mosfet("MIN1", mos_type=MosType.NMOS, width=500e-9, length=30e-9,
                   terminals={"D": "OUT", "G": "INP", "S": "TAIL", "B": "VSS"}),
            Mosfet("MIN2", mos_type=MosType.NMOS, width=500e-9, length=30e-9,
                   terminals={"D": "OUTB", "G": "INN", "S": "TAIL", "B": "VSS"}),
            # Enable tail.
            Mosfet("MEN", mos_type=MosType.NMOS, width=600e-9, length=30e-9,
                   terminals={"D": "TAIL", "G": "EN", "S": "VSS", "B": "VSS"}),
        ]
        for device in devices:
            circuit.add_device(device)
        return circuit

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        mid = height // 2
        cell.add_shape("DIFF", Rect(200, 200, width - 200, mid - 100))
        cell.add_shape("DIFF", Rect(200, mid + 100, width - 200, height - 200))
        cell.add_shape("NWELL", Rect(150, mid + 50, width - 150, height - 150))
        cell.add_shape("POLY", Rect(200, mid - 40, width - 200, mid + 40))
        cell.add_pin("INP", "M2", Rect(300, 0, 400, 300), direction="input")
        cell.add_pin("INN", "M2", Rect(600, 0, 700, 300), direction="input")
        cell.add_pin("OUT", "M2", Rect(width - 500, height - 300, width - 400, height),
                     direction="output")
        cell.add_pin("OUTB", "M2", Rect(width - 300, height - 300, width - 200, height),
                     direction="output")
        cell.add_pin("EN", "M1", Rect(0, mid - 50, 200, mid + 50), direction="input")
