"""The local array-shared computing cell (paper Figure 6, left).

One of these serves the L 8T SRAM cells of a local array: it holds the
shared compute capacitor C_F, the reset/precharge devices that place both
plates at V_CM before a MAC, and the group-control switches (P / N / PCH)
that reconnect the capacitor's bottom plate during the SAR conversion so
the capacitor acts as a CDAC unit of its SAR group.

Pins:
    LBL        — local read bitline from the L SRAM cells (the product),
    RBL        — the column's shared read bitline (redistribution node),
    P, N, PB   — SAR group switching controls,
    PCH, RST   — precharge and reset controls,
    VCM        — common-mode reference,
    VDD, VSS   — supplies.
"""

from __future__ import annotations

from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Capacitor, Mosfet, MosType
from repro.technology.tech import Technology


class LocalComputeCell(CellTemplate):
    """Template of the local array-shared computing cell."""

    cell_name = "local_compute"

    def __init__(
        self,
        height_dbu: int,
        width_dbu: int = 2000,
        capacitance: float = 1.0e-15,
    ) -> None:
        super().__init__(height_dbu, width_dbu)
        self.capacitance = capacitance

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("LBL", PinDirection.INPUT),
            Pin("RBL", PinDirection.INOUT),
            Pin("P", PinDirection.INPUT),
            Pin("N", PinDirection.INPUT),
            Pin("PB", PinDirection.INPUT),
            Pin("PCH", PinDirection.INPUT),
            Pin("RST", PinDirection.INPUT),
            Pin("VCM", PinDirection.SUPPLY),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        devices = [
            # Shared compute capacitor: TOP is the MAC result node, BOT the
            # redistribution node on the read bitline.
            Capacitor("CF", capacitance=self.capacitance,
                      terminals={"PLUS": "CTOP", "MINUS": "CBOT"}),
            # Reset of both plates to VCM before the MAC state.
            Mosfet("MRSTT", mos_type=MosType.NMOS, width=200e-9, length=30e-9,
                   terminals={"D": "CTOP", "G": "RST", "S": "VCM", "B": "VSS"}),
            Mosfet("MRSTB", mos_type=MosType.NMOS, width=200e-9, length=30e-9,
                   terminals={"D": "CBOT", "G": "RST", "S": "VCM", "B": "VSS"}),
            # Drive the top plate from the local read bitline during MAC.
            Mosfet("MDRV", mos_type=MosType.NMOS, width=300e-9, length=30e-9,
                   terminals={"D": "CTOP", "G": "PCH", "S": "LBL", "B": "VSS"}),
            # Group control: bottom plate to VDD (P), VSS (N) or the RBL (PB)
            # during the SAR switching procedure.
            Mosfet("MSWP", mos_type=MosType.PMOS, width=240e-9, length=30e-9,
                   terminals={"D": "CBOT", "G": "P", "S": "VDD", "B": "VDD"}),
            Mosfet("MSWN", mos_type=MosType.NMOS, width=240e-9, length=30e-9,
                   terminals={"D": "CBOT", "G": "N", "S": "VSS", "B": "VSS"}),
            Mosfet("MSHR", mos_type=MosType.NMOS, width=400e-9, length=30e-9,
                   terminals={"D": "CBOT", "G": "PB", "S": "RBL", "B": "VSS"}),
        ]
        for device in devices:
            circuit.add_device(device)
        return circuit

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        # Upper two thirds: the MOM capacitor; lower third: the switches.
        cap_bottom = height // 3
        cell.add_shape("MOMCAP", Rect(200, cap_bottom, width - 200, height - 200))
        finger_pitch = 250
        x = 220
        polarity = 0
        while x + 60 <= width - 220:
            net = "CTOP" if polarity % 2 == 0 else "CBOT"
            cell.add_shape("M3", Rect(x, cap_bottom + 50, x + 60, height - 250), net=net)
            x += finger_pitch
            polarity += 1
        cell.add_shape("DIFF", Rect(150, 150, width - 150, cap_bottom - 100))
        cell.add_shape("POLY", Rect(150, cap_bottom // 2 - 40, width - 150,
                                    cap_bottom // 2 + 40))
        mid = height // 2
        cell.add_pin("LBL", "M2", Rect(width - 400, 0, width - 300, height),
                     direction="input")
        cell.add_pin("RBL", "M2", Rect(width - 200, 0, width - 100, height),
                     direction="inout")
        cell.add_pin("P", "M1", Rect(0, mid + 200, 200, mid + 300), direction="input")
        cell.add_pin("N", "M1", Rect(0, mid, 200, mid + 100), direction="input")
        cell.add_pin("PB", "M1", Rect(0, mid - 200, 200, mid - 100), direction="input")
        cell.add_pin("PCH", "M1", Rect(0, mid - 400, 200, mid - 300), direction="input")
        cell.add_pin("RST", "M1", Rect(0, mid - 600, 200, mid - 500), direction="input")
        cell.add_pin("VCM", "M1", Rect(width // 2 - 100, 150, width // 2 + 100, 250),
                     direction="supply")
