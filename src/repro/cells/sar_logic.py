"""SAR logic cells: the dynamic flip-flop and the per-column SAR controller.

The SAR controller sequences the B_ADC comparison rounds: each round's
comparator decision is latched into one dynamic D flip-flop, whose outputs
drive the P<i>/N<i> group-control signals of the corresponding SAR
capacitor group (paper Figure 6, "SAR Ctrl").  The flip-flop footprint
A_DFF is one of the Equation-10 area constants.

Two templates are provided:

* :class:`SarDffCell` — one TSPC-style dynamic flip-flop,
* :class:`SarControlCell` — a parameterised controller composed of
  ``bits`` flip-flops plus the round-sequencing gates; it is the cell the
  netlist generator instantiates once per column.
"""

from __future__ import annotations

from repro.errors import CellLibraryError
from repro.cells.base import CellTemplate
from repro.layout.geometry import Rect, Transform
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Mosfet, MosType
from repro.technology.tech import Technology


class SarDffCell(CellTemplate):
    """Template of one dynamic (TSPC) D flip-flop of the SAR logic."""

    cell_name = "sar_dff"

    def __init__(self, height_dbu: int, width_dbu: int = 2000) -> None:
        super().__init__(height_dbu, width_dbu)

    def build_netlist(self) -> Circuit:
        circuit = Circuit(self.cell_name, pins=[
            Pin("D", PinDirection.INPUT),
            Pin("CLK", PinDirection.INPUT),
            Pin("Q", PinDirection.OUTPUT),
            Pin("QB", PinDirection.OUTPUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ])
        devices = [
            # First (precharge) stage.
            Mosfet("MP1", mos_type=MosType.PMOS, width=200e-9, length=30e-9,
                   terminals={"D": "N1", "G": "D", "S": "VDD", "B": "VDD"}),
            Mosfet("MN1", mos_type=MosType.NMOS, width=150e-9, length=30e-9,
                   terminals={"D": "N1", "G": "CLK", "S": "N1A", "B": "VSS"}),
            Mosfet("MN2", mos_type=MosType.NMOS, width=150e-9, length=30e-9,
                   terminals={"D": "N1A", "G": "D", "S": "VSS", "B": "VSS"}),
            # Second (evaluation) stage.
            Mosfet("MP2", mos_type=MosType.PMOS, width=200e-9, length=30e-9,
                   terminals={"D": "QB", "G": "N1", "S": "VDD", "B": "VDD"}),
            Mosfet("MN3", mos_type=MosType.NMOS, width=150e-9, length=30e-9,
                   terminals={"D": "QB", "G": "CLK", "S": "N2A", "B": "VSS"}),
            Mosfet("MN4", mos_type=MosType.NMOS, width=150e-9, length=30e-9,
                   terminals={"D": "N2A", "G": "N1", "S": "VSS", "B": "VSS"}),
            # Output inverter producing the true output Q.
            Mosfet("MP3", mos_type=MosType.PMOS, width=200e-9, length=30e-9,
                   terminals={"D": "Q", "G": "QB", "S": "VDD", "B": "VDD"}),
            Mosfet("MN5", mos_type=MosType.NMOS, width=150e-9, length=30e-9,
                   terminals={"D": "Q", "G": "QB", "S": "VSS", "B": "VSS"}),
        ]
        for device in devices:
            circuit.add_device(device)
        return circuit

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        width, height = self.width_dbu, self.height_dbu
        mid = height // 2
        cell.add_shape("DIFF", Rect(200, 200, width - 200, mid - 100))
        cell.add_shape("NWELL", Rect(150, mid, width - 150, height - 150))
        cell.add_shape("DIFF", Rect(200, mid + 100, width - 200, height - 200))
        cell.add_shape("POLY", Rect(250, 150, 330, height - 150))
        cell.add_shape("POLY", Rect(width // 2, 150, width // 2 + 80, height - 150))
        cell.add_pin("D", "M1", Rect(0, mid - 50, 200, mid + 50), direction="input")
        cell.add_pin("CLK", "M1", Rect(0, mid - 250, 200, mid - 150), direction="input")
        cell.add_pin("Q", "M2", Rect(width - 300, mid - 50, width - 200, mid + 50),
                     direction="output")
        cell.add_pin("QB", "M2", Rect(width - 500, mid - 50, width - 400, mid + 50),
                     direction="output")


class SarControlCell(CellTemplate):
    """Parameterised SAR controller: ``bits`` flip-flops stacked vertically.

    The controller's netlist instantiates the flip-flop subcircuit ``bits``
    times (one per SAR group) and exposes the per-bit P/N group-control
    outputs; its layout stacks the flip-flop layout templates, which is
    exactly how the hierarchical placer treats "Std" sub-blocks (paper
    Figure 7).
    """

    cell_name = "sar_control"

    def __init__(self, dff: SarDffCell, bits: int) -> None:
        if bits < 1:
            raise CellLibraryError("SAR controller needs at least 1 bit")
        self.dff = dff
        self.bits = bits
        super().__init__(height_dbu=dff.height_dbu * bits, width_dbu=dff.width_dbu)

    def build_netlist(self) -> Circuit:
        pins = [
            Pin("COMP", PinDirection.INPUT),
            Pin("CLK", PinDirection.INPUT),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ]
        for bit in range(self.bits):
            pins.append(Pin(f"P{bit}", PinDirection.OUTPUT))
            pins.append(Pin(f"N{bit}", PinDirection.OUTPUT))
        circuit = Circuit(f"{self.cell_name}_b{self.bits}", pins=pins)
        dff_netlist = self.dff.netlist()
        for bit in range(self.bits):
            circuit.add_instance(
                f"DFF{bit}",
                dff_netlist,
                connections={
                    "D": "COMP",
                    "CLK": "CLK",
                    "Q": f"P{bit}",
                    "QB": f"N{bit}",
                    "VDD": "VDD",
                    "VSS": "VSS",
                },
            )
        return circuit

    def layout(self, technology: Technology) -> LayoutCell:
        boundary = Rect(0, 0, self.width_dbu, self.height_dbu)
        cell = LayoutCell(f"{self.cell_name}_b{self.bits}", boundary=boundary)
        dff_layout = self.dff.layout(technology)
        for bit in range(self.bits):
            cell.add_instance(
                f"DFF{bit}",
                dff_layout,
                Transform(0, bit * self.dff.height_dbu),
            )
        for bit in range(self.bits):
            y = bit * self.dff.height_dbu + self.dff.height_dbu // 2
            cell.add_pin(f"P{bit}", "M2",
                         Rect(self.width_dbu - 300, y - 50, self.width_dbu - 200, y + 50),
                         direction="output")
            cell.add_pin(f"N{bit}", "M2",
                         Rect(self.width_dbu - 500, y - 50, self.width_dbu - 400, y + 50),
                         direction="output")
        cell.add_pin("COMP", "M1", Rect(0, 150, 200, 250), direction="input")
        cell.add_pin("CLK", "M1", Rect(0, 350, 200, 450), direction="input")
        cell.add_pin("VDD", "M1", Rect(0, self.height_dbu - 100, self.width_dbu,
                                       self.height_dbu), direction="supply")
        cell.add_pin("VSS", "M1", Rect(0, 0, self.width_dbu, 60), direction="supply")
        return cell

    def build_layout_content(self, cell: LayoutCell, technology: Technology) -> None:
        # layout() is overridden entirely; this hook is never reached.
        raise NotImplementedError("SarControlCell overrides layout() directly")
