"""Command-line interface of the EasyACIM reproduction.

Usage (after ``pip install -e .``)::

    python -m repro explore --array-size 16384 --min-snr-db 15 --csv pareto.csv
    python -m repro layout --height 128 --width 128 --local 8 --adc-bits 3 --out out/
    python -m repro library --report
    python -m repro validate-snr --adc-bits 3 4 5 --trials 800
    python -m repro campaign run nightly --store results.sqlite --array-size 16384
    python -m repro campaign resume nightly --store results.sqlite
    python -m repro campaign query --store results.sqlite --min-snr-db 20

The CLI is a thin veneer over the library: every subcommand maps onto one
public API entry point so scripted use and interactive use stay in sync.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import __version__
from repro.arch.spec import ACIMDesignSpec
from repro.engine import BACKENDS
from repro.cells.library import default_cell_library
from repro.dse.distill import DistillationCriteria, distill
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.flow.report import (
    design_table,
    engine_stats_table,
    format_table,
    pareto_summary,
)
from repro.flow.testbench import TestbenchGenerator
from repro.model.estimator import ACIMEstimator
from repro.netlist.spice import write_spice
from repro.reporting.ascii_plots import render_pareto_front
from repro.reporting.campaigns import (
    campaign_table,
    store_summary_table,
    stored_design_table,
)
from repro.reporting.export import export_csv, export_json
from repro.sim.montecarlo import MonteCarloSnr
from repro.store import RANK_METRICS, CampaignManager, ResultStore
from repro.technology.tech import generic28


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EasyACIM reproduction: automated analog CIM generation",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    explore = subparsers.add_parser(
        "explore", help="run the MOGA-based design space exploration")
    explore.add_argument("--array-size", type=int, default=16 * 1024,
                         help="total number of bit cells H*W (default 16384)")
    explore.add_argument("--population", type=int, default=80)
    explore.add_argument("--generations", type=int, default=40)
    explore.add_argument("--seed", type=int, default=1)
    explore.add_argument("--backend", choices=list(BACKENDS), default=None,
                         help="evaluation-engine backend for population "
                              "batches (default: serial, or process when "
                              "--workers is given)")
    explore.add_argument("--workers", type=int, default=None,
                         help="engine pool size (implies --backend process; "
                              "default pool size: all CPU cores)")
    explore.add_argument("--engine-stats", action="store_true",
                         help="print evaluation-engine statistics")
    explore.add_argument("--min-snr-db", type=float, default=None,
                         help="user distillation: minimum SNR in dB")
    explore.add_argument("--min-tops", type=float, default=None,
                         help="user distillation: minimum throughput in TOPS")
    explore.add_argument("--min-tops-per-watt", type=float, default=None,
                         help="user distillation: minimum efficiency in TOPS/W")
    explore.add_argument("--max-area", type=float, default=None,
                         help="user distillation: maximum area in F^2/bit")
    explore.add_argument("--csv", type=Path, default=None,
                         help="export the (distilled) Pareto set to CSV")
    explore.add_argument("--json", type=Path, default=None,
                         help="export the (distilled) Pareto set to JSON")
    explore.add_argument("--plot", action="store_true",
                         help="print an ASCII efficiency/area scatter")
    explore.set_defaults(handler=_cmd_explore)

    layout = subparsers.add_parser(
        "layout", help="generate netlist, layout, GDS/DEF/LEF for one design point")
    layout.add_argument("--height", type=int, required=True)
    layout.add_argument("--width", type=int, required=True)
    layout.add_argument("--local", type=int, required=True,
                        help="local array size L")
    layout.add_argument("--adc-bits", type=int, required=True)
    layout.add_argument("--out", type=Path, default=Path("easyacim_out"))
    layout.add_argument("--no-route", action="store_true",
                        help="skip column routing (floorplan only)")
    layout.add_argument("--spice", action="store_true",
                        help="also write the macro SPICE netlist")
    layout.add_argument("--testbench", action="store_true",
                        help="also write a SPICE testbench")
    layout.add_argument("--lef", action="store_true",
                        help="also write macro and technology LEF abstracts")
    layout.set_defaults(handler=_cmd_layout)

    estimate = subparsers.add_parser(
        "estimate", help="evaluate the estimation model for one design point")
    estimate.add_argument("--height", type=int, required=True)
    estimate.add_argument("--width", type=int, required=True)
    estimate.add_argument("--local", type=int, required=True)
    estimate.add_argument("--adc-bits", type=int, required=True)
    estimate.add_argument(
        "--adc-sweep", action="store_true",
        help="additionally sweep every feasible B_ADC for this geometry "
             "(evaluated as one vectorized batch)")
    estimate.set_defaults(handler=_cmd_estimate)

    library = subparsers.add_parser(
        "library", help="inspect the customized cell library")
    library.add_argument("--report", action="store_true",
                         help="print the per-cell summary")
    library.set_defaults(handler=_cmd_library)

    campaign = subparsers.add_parser(
        "campaign",
        help="persistent, resumable exploration campaigns (docs/campaigns.md)")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _store_argument(subparser):
        subparser.add_argument(
            "--store", type=Path, default=Path("easyacim_store.sqlite"),
            help="SQLite result-store file (default easyacim_store.sqlite)")

    campaign_run = campaign_sub.add_parser(
        "run", help="start a new named, checkpointed exploration campaign")
    campaign_run.add_argument("name", help="unique campaign name")
    _store_argument(campaign_run)
    campaign_run.add_argument("--array-size", type=int, default=16 * 1024)
    campaign_run.add_argument("--population", type=int, default=80)
    campaign_run.add_argument("--generations", type=int, default=40)
    campaign_run.add_argument("--seed", type=int, default=1)
    campaign_run.add_argument("--backend", choices=list(BACKENDS), default=None)
    campaign_run.add_argument("--workers", type=int, default=None)
    campaign_run.add_argument("--checkpoint-every", type=int, default=1,
                              help="commit a snapshot every N generations")
    campaign_run.add_argument("--stop-after", type=int, default=None,
                              help="stop (checkpointed, resumable) after N "
                                   "generations in this invocation")
    campaign_run.add_argument("--engine-stats", action="store_true")
    campaign_run.set_defaults(handler=_cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="continue a killed campaign from its last checkpoint")
    campaign_resume.add_argument("name")
    _store_argument(campaign_resume)
    campaign_resume.add_argument("--stop-after", type=int, default=None)
    campaign_resume.add_argument("--engine-stats", action="store_true")
    campaign_resume.set_defaults(handler=_cmd_campaign_resume)

    campaign_list = campaign_sub.add_parser(
        "list", help="list every campaign in the store")
    _store_argument(campaign_list)
    campaign_list.set_defaults(handler=_cmd_campaign_list)

    campaign_query = campaign_sub.add_parser(
        "query", help="ranked design points across all campaigns")
    _store_argument(campaign_query)
    campaign_query.add_argument("--min-snr-db", type=float, default=None)
    campaign_query.add_argument("--min-tops", type=float, default=None)
    campaign_query.add_argument("--min-tops-per-watt", type=float, default=None)
    campaign_query.add_argument("--max-area", type=float, default=None,
                                help="maximum area in F^2/bit")
    campaign_query.add_argument("--rank-by", choices=sorted(RANK_METRICS),
                                default="tops_per_watt")
    campaign_query.add_argument("--limit", type=int, default=None)
    campaign_query.add_argument("--all", action="store_true",
                                help="include Pareto-dominated points")
    campaign_query.add_argument("--csv", type=Path, default=None)
    campaign_query.add_argument("--json", type=Path, default=None)
    campaign_query.set_defaults(handler=_cmd_campaign_query)

    validate = subparsers.add_parser(
        "validate-snr", help="Monte-Carlo validation of the SNR model")
    validate.add_argument("--adc-bits", type=int, nargs="+", default=[3, 4, 5])
    validate.add_argument("--height", type=int, default=128)
    validate.add_argument("--local", type=int, default=4)
    validate.add_argument("--trials", type=int, default=800)
    validate.set_defaults(handler=_cmd_validate_snr)

    return parser


# ---------------------------------------------------------------------------
# Subcommand handlers
# ---------------------------------------------------------------------------


def _cmd_explore(args: argparse.Namespace) -> int:
    backend = args.backend or ("process" if args.workers else "serial")
    explorer = DesignSpaceExplorer(config=NSGA2Config(
        population_size=args.population,
        generations=args.generations,
        seed=args.seed,
        backend=backend,
        workers=args.workers,
    ))
    result = explorer.explore(args.array_size)
    designs = result.pareto_set
    criteria = DistillationCriteria(
        min_snr_db=args.min_snr_db,
        min_tops=args.min_tops,
        min_tops_per_watt=args.min_tops_per_watt,
        max_area_f2_per_bit=args.max_area,
        name="cli",
    )
    if any(value is not None for value in (
            args.min_snr_db, args.min_tops, args.min_tops_per_watt, args.max_area)):
        designs = distill(designs, criteria)

    print(f"Explored {args.array_size}-bit array: "
          f"{len(result.pareto_set)} Pareto solutions "
          f"({len(designs)} after distillation), "
          f"{result.evaluations} evaluations, {result.runtime_seconds:.2f} s")
    if args.engine_stats and result.engine_stats:
        print(format_table(engine_stats_table(result.engine_stats)))
    if designs:
        print(format_table([pareto_summary(designs)]))
        print()
        print(format_table(design_table(designs)))
    if args.plot and designs:
        print()
        print(render_pareto_front(
            designs, title=f"{args.array_size}-bit design space",
            category=lambda d: f"B={d.spec.adc_bits}"))
    if args.csv and designs:
        export_csv(designs, args.csv)
        print(f"CSV written to {args.csv}")
    if args.json and designs:
        export_json(designs, args.json, metadata={
            "array_size": args.array_size,
            "population": args.population,
            "generations": args.generations,
            "seed": args.seed,
        })
        print(f"JSON written to {args.json}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> ACIMDesignSpec:
    return ACIMDesignSpec(args.height, args.width, args.local, args.adc_bits).validate()


def _cmd_layout(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    technology = generic28()
    library = default_cell_library(technology)
    args.out.mkdir(parents=True, exist_ok=True)

    netlist = TemplateNetlistGenerator(library).generate(spec)
    if args.spice:
        spice_path = args.out / f"{netlist.name}.sp"
        spice_path.write_text(write_spice(netlist))
        print(f"SPICE netlist written to {spice_path}")
    if args.testbench:
        tb_path = args.out / f"{netlist.name}_tb.sp"
        TestbenchGenerator().write(spec, netlist, tb_path)
        print(f"Testbench written to {tb_path}")

    report = LayoutGenerator(library).generate(
        spec, route_column=not args.no_route, export=True, output_dir=str(args.out))
    print(format_table([report.as_dict()]))
    print(f"GDS written to {report.gds_path}")
    print(f"DEF written to {report.def_path}")

    if args.lef:
        from repro.layout.lef_export import write_macro_lef, write_tech_lef

        tech_lef = args.out / "generic28_tech.lef"
        macro_lef = args.out / f"{report.layout.name}.lef"
        write_tech_lef(technology, tech_lef)
        write_macro_lef(report.layout, technology, macro_lef)
        print(f"LEF written to {macro_lef} (+ {tech_lef})")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    estimator = ACIMEstimator()
    if args.adc_sweep:
        from repro.arch.batch import SpecBatch

        # Highest precision the CDAC grouping supports: H/L >= 2^B_ADC.
        max_feasible_bits = spec.local_arrays_per_column.bit_length() - 1
        sweep = SpecBatch.from_product(
            [spec.height], [spec.local_array_size],
            range(1, max_feasible_bits + 1),
            array_size=spec.array_size,
        )
        rows = [metrics.as_dict() for metrics in estimator.evaluate_batch(sweep)]
        print(format_table(rows))
        return 0
    metrics = estimator.evaluate(spec)
    print(format_table([metrics.as_dict()]))
    return 0


def _cmd_library(args: argparse.Namespace) -> int:
    technology = generic28()
    library = default_cell_library(technology)
    problems = library.check_consistency()
    print(f"Cell library: {len(library.cell_names)} cells on {technology.name}")
    if args.report:
        print(library.report())
    if problems:
        print("Consistency problems:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("Library netlist/layout views are consistent.")
    return 0


def _print_campaign_outcome(result, engine_stats: bool) -> None:
    print(format_table([result.as_dict()]))
    if result.status == "interrupted":
        print(f"Campaign {result.name!r} checkpointed at generation "
              f"{result.generations_done}/{result.total_generations}; "
              f"continue with: campaign resume {result.name}")
    elif result.pareto_set:
        print()
        print(format_table(design_table(result.pareto_set)))
    if engine_stats and result.engine_stats:
        print(format_table(engine_stats_table(result.engine_stats)))


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    backend = args.backend or ("process" if args.workers else "serial")
    with ResultStore(args.store) as store:
        manager = CampaignManager(store,
                                  checkpoint_every=args.checkpoint_every)
        result = manager.run(
            args.name,
            args.array_size,
            config=NSGA2Config(
                population_size=args.population,
                generations=args.generations,
                seed=args.seed,
                backend=backend,
                workers=args.workers,
            ),
            stop_after_generations=args.stop_after,
        )
        _print_campaign_outcome(result, args.engine_stats)
    return 0


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    with ResultStore(args.store) as store:
        result = CampaignManager(store).resume(
            args.name, stop_after_generations=args.stop_after)
        _print_campaign_outcome(result, args.engine_stats)
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    with ResultStore(args.store) as store:
        records = store.list_campaigns()
        print(format_table(store_summary_table(store.stats())))
        print()
        if records:
            print(format_table(campaign_table(records)))
        else:
            print("(no campaigns)")
    return 0


def _cmd_campaign_query(args: argparse.Namespace) -> int:
    criteria = DistillationCriteria(
        min_snr_db=args.min_snr_db,
        min_tops=args.min_tops,
        min_tops_per_watt=args.min_tops_per_watt,
        max_area_f2_per_bit=args.max_area,
        name="cli-query",
    )
    with ResultStore(args.store) as store:
        entries = store.query(
            criteria=criteria,
            pareto_only=not args.all,
            rank_by=args.rank_by,
            limit=args.limit,
        )
        rows = stored_design_table(entries)
        if not rows:
            print("(no stored design points match)")
            return 1
        print(f"{len(rows)} design points "
              f"(ranked by {args.rank_by}, "
              f"{'all' if args.all else 'Pareto-only'}):")
        print(format_table(rows))
        if args.csv:
            export_csv(rows, args.csv)
            print(f"CSV written to {args.csv}")
        if args.json:
            export_json(rows, args.json,
                        metadata={"store": str(args.store),
                                  "rank_by": args.rank_by})
            print(f"JSON written to {args.json}")
    return 0


def _cmd_validate_snr(args: argparse.Namespace) -> int:
    estimator = ACIMEstimator()
    rows = []
    for bits in args.adc_bits:
        spec = ACIMDesignSpec(args.height, 8, args.local, bits)
        if not spec.is_feasible():
            print(f"skipping infeasible point B_ADC={bits} (H/L too small)")
            continue
        measurement = MonteCarloSnr(spec, seed=7).run(trials=args.trials)
        n = spec.local_arrays_per_column
        rows.append({
            "B_ADC": bits,
            "N": n,
            "analytic_dB": round(estimator.snr_model.design_snr_db(bits, n), 2),
            "measured_dB": round(measurement.snr_db, 2),
        })
    print(format_table(rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
