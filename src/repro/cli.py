"""Command-line interface of the EasyACIM reproduction.

Usage (after ``pip install -e .``)::

    python -m repro explore --array-size 16384 --min-snr-db 15 --csv pareto.csv
    python -m repro flow --array-size 1024 --out out/ --route
    python -m repro layout --height 128 --width 128 --local 8 --adc-bits 3 --out out/
    python -m repro library --report
    python -m repro validate-snr --adc-bits 3 4 5 --trials 800
    python -m repro campaign run nightly --store results.sqlite --array-size 16384
    python -m repro campaign resume nightly --store results.sqlite
    python -m repro campaign query --store results.sqlite --min-snr-db 20
    python -m repro metrics --store results.sqlite
    python -m repro trace --trace-out flow.json -- flow --array-size 1024

Every subcommand is a thin adapter over :mod:`repro.api`: it builds one
typed, JSON-serializable request, submits it to a
:class:`~repro.api.Session` configured from the shared ``--backend`` /
``--workers`` / ``--store`` flags, and renders the
:class:`~repro.api.ApiResult` envelope — as human-readable tables by
default, or as the raw envelope with the uniform ``--json`` flag
(``--json`` alone prints the JSON document to stdout instead of the
tables; ``--json PATH`` writes it to a file alongside them).  Scripted
use and interactive use therefore go through the identical code path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import __version__
from repro.api import (
    ApiResult,
    CampaignRequest,
    EstimateRequest,
    ExploreRequest,
    FlowRequest,
    LayoutRequest,
    LibraryRequest,
    QueryRequest,
    Session,
    SessionConfig,
    ValidateSnrRequest,
)
from repro.engine import BACKENDS
from repro.errors import ReproError
from repro.flow.report import (
    design_table,
    engine_stats_table,
    format_table,
    pareto_summary,
)
from repro.obs import (
    configure_tracing,
    export_chrome,
    export_jsonl,
    get_tracer,
)
from repro.reporting.ascii_plots import render_pareto_front
from repro.reporting.campaigns import (
    campaign_table,
    store_summary_table,
    stored_design_table,
)
from repro.reporting.observability import (
    campaign_trend_table,
    metrics_table,
    run_metrics_table,
)
from repro.reporting.export import export_csv
from repro.reporting.physical import macro_table, physical_stats_table
from repro.store import RANK_METRICS

#: Default store file of the campaign subcommands (kept from the pre-API
#: CLI so existing invocations find their data).
DEFAULT_CAMPAIGN_STORE = Path("easyacim_store.sqlite")


def _session_parent() -> argparse.ArgumentParser:
    """The one parent parser carrying the shared session/output flags.

    Every subcommand inherits these, so backend/worker/store/JSON
    conventions are defined exactly once instead of per-command copies.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("session options (shared)")
    group.add_argument("--backend", choices=list(BACKENDS), default=None,
                       help="evaluation-engine backend (default: serial, "
                            "or process when --workers is given)")
    group.add_argument("--workers", type=int, default=None,
                       help="engine pool size (implies --backend process; "
                            "default pool size: all CPU cores)")
    group.add_argument("--store", type=Path, default=None,
                       help="persistent SQLite result store the session "
                            "reads (warm start) and writes (default: none; "
                            "campaign commands default to "
                            f"{DEFAULT_CAMPAIGN_STORE})")
    group.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="PATH", dest="json_out",
                       help="emit the result envelope as JSON: bare --json "
                            "prints it to stdout instead of the tables, "
                            "--json PATH writes it to a file alongside them")
    group.add_argument("--trace", type=Path, default=None,
                       metavar="PATH", dest="trace_out",
                       help="record a trace of this invocation: .jsonl "
                            "writes one span per line, any other suffix "
                            "writes Chrome trace_event JSON loadable in "
                            "Perfetto / chrome://tracing (docs/observability.md)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EasyACIM reproduction: automated analog CIM generation",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)
    parent = _session_parent()

    explore = subparsers.add_parser(
        "explore", parents=[parent],
        help="design space exploration (NSGA-II, exhaustive or sensitivity)")
    explore.add_argument("--array-size", type=int, default=16 * 1024,
                         help="total number of bit cells H*W (default 16384)")
    explore.add_argument("--method", choices=list(ExploreRequest.METHODS),
                         default="nsga2",
                         help="nsga2 (MOGA), exhaustive (true frontier) or "
                              "sensitivity (frontier stability)")
    explore.add_argument("--population", type=int, default=80)
    explore.add_argument("--generations", type=int, default=40)
    explore.add_argument("--seed", type=int, default=1)
    explore.add_argument("--surrogate",
                         choices=list(ExploreRequest.SURROGATE_MODES),
                         default="off",
                         help="surrogate evaluation mode: off (exact), "
                              "screen (learned pre-filtering) or refine "
                              "(screening + store-warmed start; needs "
                              "--store)")
    explore.add_argument("--screen-fraction", type=float, default=0.25,
                         help="fraction of offspring sent to the exact "
                              "engine per generation (surrogate modes)")
    explore.add_argument("--engine-stats", action="store_true",
                         help="print evaluation-engine statistics")
    explore.add_argument("--min-snr-db", type=float, default=None,
                         help="user distillation: minimum SNR in dB")
    explore.add_argument("--min-tops", type=float, default=None,
                         help="user distillation: minimum throughput in TOPS")
    explore.add_argument("--min-tops-per-watt", type=float, default=None,
                         help="user distillation: minimum efficiency in TOPS/W")
    explore.add_argument("--max-area", type=float, default=None,
                         help="user distillation: maximum area in F^2/bit")
    explore.add_argument("--csv", type=Path, default=None,
                         help="export the (distilled) Pareto set to CSV")
    explore.add_argument("--plot", action="store_true",
                         help="print an ASCII efficiency/area scatter")
    explore.set_defaults(handler=_cmd_explore)

    flow = subparsers.add_parser(
        "flow", parents=[parent],
        help="end-to-end flow: explore, distill, netlists, layouts")
    flow.add_argument("--array-size", type=int, default=1024)
    flow.add_argument("--population", type=int, default=40)
    flow.add_argument("--generations", type=int, default=20)
    flow.add_argument("--seed", type=int, default=1)
    flow.add_argument("--min-snr-db", type=float, default=None)
    flow.add_argument("--min-tops", type=float, default=None)
    flow.add_argument("--min-tops-per-watt", type=float, default=None)
    flow.add_argument("--max-area", type=float, default=None)
    flow.add_argument("--max-layouts", type=int, default=3)
    flow.add_argument("--no-netlists", action="store_true",
                      help="skip macro netlist generation")
    flow.add_argument("--no-layouts", action="store_true",
                      help="skip macro layout generation")
    flow.add_argument("--route", action="store_true",
                      help="run the maze router inside local arrays/columns")
    flow.add_argument("--out", type=Path, default=None,
                      help="export GDS/DEF of the generated layouts here")
    flow.add_argument("--campaign-name", default=None,
                      help="record the run under this name in --store")
    flow.add_argument("--reuse", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="serve repeated physical work from the "
                           "macro/artifact cache (--no-reuse solves every "
                           "design flat from scratch; docs/physical.md)")
    flow.set_defaults(handler=_cmd_flow)

    layout = subparsers.add_parser(
        "layout", parents=[parent],
        help="generate netlist, layout, GDS/DEF/LEF for one design point")
    layout.add_argument("--height", type=int, required=True)
    layout.add_argument("--width", type=int, required=True)
    layout.add_argument("--local", type=int, required=True,
                        help="local array size L")
    layout.add_argument("--adc-bits", type=int, required=True)
    layout.add_argument("--out", type=Path, default=Path("easyacim_out"))
    layout.add_argument("--no-route", action="store_true",
                        help="skip column routing (floorplan only)")
    layout.add_argument("--spice", action="store_true",
                        help="also write the macro SPICE netlist")
    layout.add_argument("--testbench", action="store_true",
                        help="also write a SPICE testbench")
    layout.add_argument("--lef", action="store_true",
                        help="also write macro and technology LEF abstracts")
    layout.set_defaults(handler=_cmd_layout)

    estimate = subparsers.add_parser(
        "estimate", parents=[parent],
        help="evaluate the estimation model for one design point")
    estimate.add_argument("--height", type=int, required=True)
    estimate.add_argument("--width", type=int, required=True)
    estimate.add_argument("--local", type=int, required=True)
    estimate.add_argument("--adc-bits", type=int, required=True)
    estimate.add_argument(
        "--adc-sweep", action="store_true",
        help="additionally sweep every feasible B_ADC for this geometry "
             "(evaluated as one vectorized batch)")
    estimate.set_defaults(handler=_cmd_estimate)

    library = subparsers.add_parser(
        "library", parents=[parent],
        help="inspect the customized cell library and the macro cache")
    library.add_argument("topic", nargs="?", choices=("cells", "macros"),
                         default="cells",
                         help="cells (default): the leaf-cell library; "
                              "macros: the solved-macro reuse cache "
                              "(combine with --store for the persistent "
                              "artifact inventory)")
    library.add_argument("--report", action="store_true",
                         help="print the per-cell summary")
    library.add_argument("--stage", default=None,
                         choices=sorted(LibraryRequest._STAGES),
                         help="macros: only list artifacts of this store "
                              "stage (solved macros live under 'macro')")
    library.add_argument("--kind", default=None,
                         help="macros: only list macros of this kind "
                              "(local_array, column, acim_macro)")
    library.set_defaults(handler=_cmd_library)

    campaign = subparsers.add_parser(
        "campaign",
        help="persistent, resumable exploration campaigns (docs/campaigns.md)")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    campaign_run = campaign_sub.add_parser(
        "run", parents=[parent],
        help="start a new named, checkpointed exploration campaign")
    campaign_run.add_argument("name", help="unique campaign name")
    campaign_run.add_argument("--array-size", type=int, default=16 * 1024)
    campaign_run.add_argument("--population", type=int, default=80)
    campaign_run.add_argument("--generations", type=int, default=40)
    campaign_run.add_argument("--seed", type=int, default=1)
    campaign_run.add_argument("--checkpoint-every", type=int, default=1,
                              help="commit a snapshot every N generations")
    campaign_run.add_argument("--shards", type=int, default=None,
                              help="pre-warm the store by evaluating the "
                                   "feasible design grid across N worker "
                                   "processes before optimising "
                                   "(file-backed store required)")
    campaign_run.add_argument("--surrogate",
                              choices=list(CampaignRequest.SURROGATE_MODES),
                              default="off",
                              help="surrogate evaluation mode: off (exact), "
                                   "screen or refine (store-warmed)")
    campaign_run.add_argument("--screen-fraction", type=float, default=0.25,
                              help="fraction of offspring evaluated exactly "
                                   "per generation (surrogate modes)")
    campaign_run.add_argument("--stop-after", type=int, default=None,
                              help="stop (checkpointed, resumable) after N "
                                   "generations in this invocation")
    campaign_run.add_argument("--engine-stats", action="store_true")
    campaign_run.set_defaults(handler=_cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", parents=[parent],
        help="continue a killed campaign from its last checkpoint")
    campaign_resume.add_argument("name")
    campaign_resume.add_argument("--stop-after", type=int, default=None)
    campaign_resume.add_argument("--engine-stats", action="store_true")
    campaign_resume.set_defaults(handler=_cmd_campaign_resume)

    campaign_list = campaign_sub.add_parser(
        "list", parents=[parent],
        help="list every campaign in the store")
    campaign_list.set_defaults(handler=_cmd_campaign_list)

    campaign_query = campaign_sub.add_parser(
        "query", parents=[parent],
        help="ranked design points across all campaigns")
    campaign_query.add_argument("--min-snr-db", type=float, default=None)
    campaign_query.add_argument("--min-tops", type=float, default=None)
    campaign_query.add_argument("--min-tops-per-watt", type=float, default=None)
    campaign_query.add_argument("--max-area", type=float, default=None,
                                help="maximum area in F^2/bit")
    campaign_query.add_argument("--rank-by", choices=sorted(RANK_METRICS),
                                default="tops_per_watt")
    campaign_query.add_argument("--limit", type=int, default=None)
    campaign_query.add_argument("--all", action="store_true",
                                help="include Pareto-dominated points")
    campaign_query.add_argument("--csv", type=Path, default=None)
    campaign_query.set_defaults(handler=_cmd_campaign_query)

    validate = subparsers.add_parser(
        "validate-snr", parents=[parent],
        help="Monte-Carlo validation of the SNR model")
    validate.add_argument("--adc-bits", type=int, nargs="+", default=[3, 4, 5])
    validate.add_argument("--height", type=int, default=128)
    validate.add_argument("--local", type=int, default=4)
    validate.add_argument("--trials", type=int, default=800)
    validate.set_defaults(handler=_cmd_validate_snr)

    metrics = subparsers.add_parser(
        "metrics", parents=[parent],
        help="per-campaign run metrics and trends from the store "
             "(docs/observability.md)")
    metrics.add_argument("--campaign", default=None,
                         help="restrict to one campaign's recorded runs")
    metrics.set_defaults(handler=_cmd_metrics)

    serve = subparsers.add_parser(
        "serve", parents=[parent],
        help="multi-tenant HTTP job server over one shared session "
             "(docs/serving.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8433,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8433)")
    serve.add_argument("--serve-workers", type=int, default=4,
                       help="job-executor threads, i.e. concurrent jobs "
                            "server-wide (default 4; --workers still sizes "
                            "the evaluation engine's process pool)")
    serve.add_argument("--max-per-tenant", type=int, default=2,
                       help="concurrently running jobs allowed per tenant "
                            "(default 2)")
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="admission rate per tenant in requests/second "
                            "(default: unlimited)")
    serve.add_argument("--rate-burst", type=float, default=None,
                       help="token-bucket burst capacity (default: one "
                            "second's worth of --rate-limit)")
    serve.set_defaults(handler=_cmd_serve)

    trace = subparsers.add_parser(
        "trace",
        help="run any repro command under tracing and export the trace")
    trace.add_argument("--trace-out", type=Path, dest="out_path",
                       default=Path("repro_trace.json"), metavar="PATH",
                       help="trace file to write (.jsonl: one span per "
                            "line; otherwise Chrome trace_event JSON for "
                            "Perfetto / chrome://tracing)")
    trace.add_argument("cmd", nargs=argparse.REMAINDER,
                       help="the repro command to run (separate with --, "
                            "e.g. repro trace -- flow --array-size 1024)")
    trace.set_defaults(handler=_cmd_trace)

    return parser


# ---------------------------------------------------------------------------
# Session plumbing shared by every handler
# ---------------------------------------------------------------------------


def _session_from_args(
    args: argparse.Namespace, default_store: Optional[Path] = None
) -> Session:
    """One session per invocation, configured from the shared flags."""
    backend = args.backend or ("process" if args.workers else "serial")
    store = args.store if args.store is not None else default_store
    return Session.from_config(SessionConfig(
        backend=backend,
        workers=args.workers,
        store=str(store) if store is not None else None,
    ))


def _emit_json(result: ApiResult, args: argparse.Namespace) -> bool:
    """Handle the uniform ``--json`` flag.

    Returns True when JSON replaced the human-readable rendering (bare
    ``--json``, i.e. stdout mode); a PATH argument writes the document to
    the file and keeps the tables.
    """
    if args.json_out is None:
        return False
    document = result.to_json()
    if args.json_out == "-":
        print(document)
        return True
    path = Path(args.json_out)
    path.write_text(document + "\n")
    print(f"JSON written to {path}")
    return False


# ---------------------------------------------------------------------------
# Subcommand handlers (thin request -> Session -> render adapters)
# ---------------------------------------------------------------------------


def _cmd_explore(args: argparse.Namespace) -> int:
    request = ExploreRequest(
        array_size=args.array_size,
        method=args.method,
        population=args.population,
        generations=args.generations,
        seed=args.seed,
        min_snr_db=args.min_snr_db,
        min_tops=args.min_tops,
        min_tops_per_watt=args.min_tops_per_watt,
        max_area_f2_per_bit=args.max_area,
        surrogate=args.surrogate,
        screen_fraction=args.screen_fraction,
    )
    with _session_from_args(args) as session:
        result = session.submit(request)
    json_only = _emit_json(result, args)
    if args.method == "sensitivity":
        if json_only:
            return 0
        print(f"Sensitivity of the {args.array_size}-bit frontier "
              f"(+/-{result.payload['relative_change']:.0%} perturbations):")
        print(format_table(result.payload["sensitivity"]))
        if args.engine_stats and result.engine_stats:
            print(format_table(engine_stats_table(result.engine_stats)))
        return 0

    designs = result.artifacts["distilled"]
    # An explicitly requested file export happens in both output modes;
    # only the stdout rendering is replaced by bare --json.
    if args.csv and designs:
        export_csv(designs, args.csv)
        if not json_only:
            print(f"CSV written to {args.csv}")
    if json_only:
        return 0
    print(f"Explored {args.array_size}-bit array ({args.method}): "
          f"{result.payload['pareto_size']} Pareto solutions "
          f"({len(designs)} after distillation), "
          f"{result.payload['evaluations']} evaluations, "
          f"{result.runtime_seconds:.2f} s")
    surrogate = result.payload.get("surrogate")
    if surrogate:
        print(f"Surrogate ({surrogate['mode']}): "
              f"{surrogate['exact_candidates']} exact + "
              f"{surrogate['screened_candidates']} screened-out candidates, "
              f"{surrogate['training_rows']} training rows")
    if args.engine_stats and result.engine_stats:
        print(format_table(engine_stats_table(result.engine_stats)))
    if designs:
        print(format_table([pareto_summary(designs)]))
        print()
        print(format_table(design_table(designs)))
    if args.plot and designs:
        print()
        print(render_pareto_front(
            designs, title=f"{args.array_size}-bit design space",
            category=lambda d: f"B={d.spec.adc_bits}"))
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    request = FlowRequest(
        array_size=args.array_size,
        population=args.population,
        generations=args.generations,
        seed=args.seed,
        min_snr_db=args.min_snr_db,
        min_tops=args.min_tops,
        min_tops_per_watt=args.min_tops_per_watt,
        max_area_f2_per_bit=args.max_area,
        max_layouts=args.max_layouts,
        generate_netlists=not args.no_netlists,
        generate_layouts=not args.no_layouts,
        route_columns=args.route,
        output_dir=str(args.out) if args.out is not None else None,
        campaign_name=args.campaign_name,
        reuse="auto" if args.reuse else "off",
    )
    with _session_from_args(args) as session:
        result = session.submit(request)
    if _emit_json(result, args):
        return 0
    print(result.artifacts["result"].summary())
    physical_stats = result.payload.get("physical_stats")
    if physical_stats:
        print()
        print("Physical pipeline (per stage):")
        print(format_table(physical_stats_table(physical_stats)))
    distilled = result.artifacts["result"].distilled
    if distilled:
        print()
        print(format_table(design_table(distilled)))
    return 0


def _cmd_layout(args: argparse.Namespace) -> int:
    request = LayoutRequest(
        height=args.height,
        width=args.width,
        local_array_size=args.local,
        adc_bits=args.adc_bits,
        route_columns=not args.no_route,
        output_dir=str(args.out),
        spice=args.spice,
        testbench=args.testbench,
        lef=args.lef,
    )
    with _session_from_args(args) as session:
        result = session.submit(request)
    if _emit_json(result, args):
        return 0
    files = result.payload["files"]
    if "spice" in files:
        print(f"SPICE netlist written to {files['spice']}")
    if "testbench" in files:
        print(f"Testbench written to {files['testbench']}")
    print(format_table([result.payload["report"]]))
    print(f"GDS written to {files['gds']}")
    print(f"DEF written to {files['def']}")
    if "macro_lef" in files:
        print(f"LEF written to {files['macro_lef']} (+ {files['tech_lef']})")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    request = EstimateRequest(
        height=args.height,
        width=args.width,
        local_array_size=args.local,
        adc_bits=args.adc_bits,
        adc_sweep=args.adc_sweep,
    )
    with _session_from_args(args) as session:
        result = session.submit(request)
    if _emit_json(result, args):
        return 0
    print(format_table(result.payload["metrics"]))
    return 0


def _cmd_library(args: argparse.Namespace) -> int:
    want_macros = args.topic == "macros"
    with _session_from_args(args) as session:
        result = session.submit(LibraryRequest(
            report=args.report, macros=want_macros,
            stage=args.stage, macro_kind=args.kind,
        ))
    if _emit_json(result, args):
        return 0 if result.ok else 1
    payload = result.payload
    if want_macros:
        macros = payload.get("macros", [])
        if macros:
            print(f"{len(macros)} solved macros "
                  f"(in-memory + persistent artifact cache):")
            print(format_table(macro_table(macros)))
        else:
            print("(no solved macros; run a flow or layout first, "
                  "or attach --store)")
        return 0 if result.ok else 1
    print(f"Cell library: {payload['cells']} cells on {payload['technology']}")
    if args.report:
        print(payload["report"])
    if payload["problems"]:
        print("Consistency problems:")
        for problem in payload["problems"]:
            print(f"  - {problem}")
        return 1
    print("Library netlist/layout views are consistent.")
    return 0


def _print_campaign_outcome(result: ApiResult, engine_stats: bool) -> None:
    outcome = result.artifacts["result"]
    print(format_table([outcome.as_dict()]))
    if outcome.shard_stats:
        print(f"Pre-warmed {outcome.shard_stats['points']} grid points "
              f"across {outcome.shard_stats['shards']} shard processes "
              f"({outcome.shard_stats['store_writes']} new store rows).")
    if outcome.surrogate:
        print(f"Surrogate ({outcome.surrogate['mode']}): "
              f"{outcome.surrogate['exact_candidates']} exact + "
              f"{outcome.surrogate['screened_candidates']} screened-out "
              f"candidates, {outcome.surrogate['training_rows']} "
              f"training rows")
    if outcome.status == "interrupted":
        print(f"Campaign {outcome.name!r} checkpointed at generation "
              f"{outcome.generations_done}/{outcome.total_generations}; "
              f"continue with: campaign resume {outcome.name}")
    elif outcome.pareto_set:
        print()
        print(format_table(design_table(outcome.pareto_set)))
    if engine_stats and result.engine_stats:
        print(format_table(engine_stats_table(result.engine_stats)))


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    request = CampaignRequest(
        name=args.name,
        action="run",
        array_size=args.array_size,
        population=args.population,
        generations=args.generations,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
        stop_after=args.stop_after,
        shards=args.shards,
        surrogate=args.surrogate,
        screen_fraction=args.screen_fraction,
    )
    with _session_from_args(args, default_store=DEFAULT_CAMPAIGN_STORE) as session:
        result = session.submit(request)
    if _emit_json(result, args):
        return 0
    _print_campaign_outcome(result, args.engine_stats)
    return 0


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    request = CampaignRequest(
        name=args.name, action="resume", stop_after=args.stop_after,
    )
    with _session_from_args(args, default_store=DEFAULT_CAMPAIGN_STORE) as session:
        result = session.submit(request)
    if _emit_json(result, args):
        return 0
    _print_campaign_outcome(result, args.engine_stats)
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    with _session_from_args(args, default_store=DEFAULT_CAMPAIGN_STORE) as session:
        result = session.submit(QueryRequest(what="campaigns"))
    if _emit_json(result, args):
        return 0
    print(format_table(store_summary_table(result.payload["store"])))
    print()
    records = result.artifacts["campaigns"]
    if records:
        print(format_table(campaign_table(records)))
    else:
        print("(no campaigns)")
    trend = campaign_trend_table(result.payload.get("run_metrics", []))
    if trend:
        print()
        print("Run metrics across resumes (repro metrics for detail):")
        print(format_table(trend))
    return 0


def _cmd_campaign_query(args: argparse.Namespace) -> int:
    request = QueryRequest(
        what="designs",
        min_snr_db=args.min_snr_db,
        min_tops=args.min_tops,
        min_tops_per_watt=args.min_tops_per_watt,
        max_area_f2_per_bit=args.max_area,
        rank_by=args.rank_by,
        limit=args.limit,
        pareto_only=not args.all,
    )
    with _session_from_args(args, default_store=DEFAULT_CAMPAIGN_STORE) as session:
        result = session.submit(request)
    json_only = _emit_json(result, args)
    rows = stored_design_table(result.artifacts["entries"])
    if args.csv and rows:
        export_csv(rows, args.csv)
        if not json_only:
            print(f"CSV written to {args.csv}")
    if json_only:
        return 0 if result.payload["count"] else 1
    if not rows:
        print("(no stored design points match)")
        return 1
    print(f"{len(rows)} design points "
          f"(ranked by {args.rank_by}, "
          f"{'all' if args.all else 'Pareto-only'}):")
    print(format_table(rows))
    return 0


def _cmd_validate_snr(args: argparse.Namespace) -> int:
    request = ValidateSnrRequest(
        adc_bits=tuple(args.adc_bits),
        height=args.height,
        local_array_size=args.local,
        trials=args.trials,
    )
    with _session_from_args(args) as session:
        result = session.submit(request)
    if _emit_json(result, args):
        return 0
    for warning in result.warnings:
        print(warning)
    print(format_table(result.payload["points"]))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    with _session_from_args(args, default_store=DEFAULT_CAMPAIGN_STORE) as session:
        result = session.submit(QueryRequest(what="campaigns"))
    if _emit_json(result, args):
        return 0
    rows = result.payload.get("run_metrics", [])
    if args.campaign is not None:
        rows = [row for row in rows if row.get("campaign") == args.campaign]
    if rows:
        print("Campaign run metrics (one row per run/resume):")
        print(format_table(run_metrics_table(rows)))
        print()
        print("Trends across resumes:")
        print(format_table(campaign_trend_table(rows)))
    else:
        scope = f"campaign {args.campaign!r}" if args.campaign else "this store"
        print(f"(no recorded run metrics for {scope}; "
              "campaign run/resume records one row per invocation)")
    if result.metrics:
        print()
        print("Session metrics (this query):")
        print(format_table(metrics_table(result.metrics)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve import ReproServer, ServerConfig

    backend = args.backend or ("process" if args.workers else "serial")
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.serve_workers,
        max_per_tenant=args.max_per_tenant,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        session=SessionConfig(
            backend=backend,
            workers=args.workers,
            store=str(args.store) if args.store is not None else None,
        ),
    )
    server = ReproServer(config).start()

    def _on_signal(signum, frame):
        print(f"\nsignal {signum}: draining and shutting down...",
              file=sys.stderr)
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    print(f"repro serve listening on {server.url} "
          f"({config.workers} workers, backend {backend}); "
          "SIGTERM/Ctrl-C drains and exits", file=sys.stderr)
    server.wait()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        print("usage: repro trace [--trace-out PATH] -- <repro command ...>",
              file=sys.stderr)
        return 2
    return main([*cmd, "--trace", str(args.out_path)])


def _export_trace(tracer, path: Path) -> None:
    """Write the collected spans in the format the file suffix selects."""
    spans = tracer.finished_spans()
    if path.suffix == ".jsonl":
        export_jsonl(spans, path)
    else:
        export_chrome(spans, path, trace_id=tracer.trace_id)
    # stderr, so bare --json keeps an uncontaminated JSON stdout.
    print(f"Trace with {len(spans)} spans written to {path}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    In human mode library failures surface as raw tracebacks (repo
    idiom); when ``--json`` was requested the failure is emitted as an
    ``ApiResult`` envelope with ``status="error"`` and the exception's
    machine-readable ``code``, so scripted consumers always receive a
    parseable document.

    With ``--trace PATH`` the whole invocation runs under the global
    tracer; the trace file is exported even when the command fails, so
    the spans leading up to an error stay inspectable.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    tracer = None
    if trace_out is not None:
        configure_tracing(enabled=True)
        tracer = get_tracer()
    try:
        try:
            return args.handler(args)
        except ReproError as error:
            if getattr(args, "json_out", None) is None:
                raise
            _emit_json(ApiResult(
                kind=getattr(args, "command", "unknown"),
                status="error",
                payload={"error": error.as_dict()},
            ), args)
            return 1
    finally:
        if tracer is not None:
            try:
                _export_trace(tracer, Path(trace_out))
            finally:
                tracer.disable()
                tracer.clear()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
