"""Exception hierarchy for the EasyACIM reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class at flow boundaries while still being
able to discriminate between configuration, modelling, layout and routing
failures when they need to.

Each exception class carries a machine-readable :attr:`~ReproError.code`
(a stable kebab-case identifier) so non-Python consumers — the JSON CLI
output, a future HTTP service — can dispatch on the failure kind without
parsing the human-readable message.  The :mod:`repro.api` request layer
raises these same exceptions from its validation, so a bad
``EstimateRequest`` reports the identical ``specification`` code a bad
:class:`~repro.arch.spec.ACIMDesignSpec` does.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


class ReproError(Exception):
    """Base class of all exceptions raised by the library.

    Attributes:
        code: stable machine-readable identifier of the failure kind,
            overridden by every subclass (``specification``, ``store``,
            ``request``, ...).
    """

    code: str = "repro"

    def as_dict(self) -> Dict[str, str]:
        """Serializable ``{"code", "error", "message"}`` record."""
        return {
            "code": self.code,
            "error": type(self).__name__,
            "message": str(self),
        }


class SpecificationError(ReproError):
    """A design specification violates an architectural constraint.

    Raised, for example, when ``H * W`` does not equal the requested array
    size or when the ADC precision exceeds the available capacitor groups
    (paper Equation 12).
    """

    code = "specification"


class TechnologyError(ReproError):
    """The technology description is inconsistent or incomplete."""

    code = "technology"


class NetlistError(ReproError):
    """A netlist is malformed (dangling nets, duplicate instances, ...)."""

    code = "netlist"


class CellLibraryError(ReproError):
    """The customized cell library does not provide a required cell."""

    code = "cell-library"


class LayoutError(ReproError):
    """A layout operation failed (overlaps, out-of-bounds shapes, ...)."""

    code = "layout"


class PlacementError(LayoutError):
    """The placer could not produce a legal placement."""

    code = "placement"


class RoutingError(LayoutError):
    """The router could not connect one or more nets."""

    code = "routing"


class DRCError(LayoutError):
    """A design-rule check failed.

    Carries the complete violation list (every offending shape of every
    rule, not just the first), so callers and the JSON error envelope can
    report rule names and offending coordinates.

    Args:
        message: human-readable summary.
        violations: the offending records; anything with an ``as_dict()``
            (e.g. :class:`repro.layout.drc.DRCViolation`) serializes
            fully, other objects fall back to ``str``.
    """

    code = "drc"

    def __init__(self, message: str, violations: Sequence = ()) -> None:
        super().__init__(message)
        self.violations = list(violations)

    def as_dict(self) -> Dict:
        """Structured record including rule names and shape coordinates."""
        record = super().as_dict()
        record["violations"] = [
            violation.as_dict() if hasattr(violation, "as_dict")
            else str(violation)
            for violation in self.violations
        ]
        return record


class ModelError(ReproError):
    """The performance estimation model received invalid parameters."""

    code = "model"


class CalibrationError(ModelError):
    """Model calibration against reference data failed to converge."""

    code = "calibration"


class OptimizationError(ReproError):
    """The design-space explorer failed (empty feasible set, ...)."""

    code = "optimization"


class SimulationError(ReproError):
    """The behavioral simulator received an invalid configuration."""

    code = "simulation"


class FlowError(ReproError):
    """The top-level flow controller failed to complete a stage."""

    code = "flow"


class EngineError(ReproError):
    """The evaluation engine was misconfigured (unknown backend, ...)."""

    code = "engine"


class WorkerCrashError(EngineError):
    """A persistent pool worker died mid-submission.

    Raised instead of hanging when a worker process exits abnormally
    (segfault, OOM kill, ``kill -9``) while shard ranges are still
    outstanding.  The engine tears the broken pool down and rebuilds it on
    the next submission, so the crash is not sticky.

    Args:
        message: human-readable summary.
        failed_ranges: the ``(lo, hi)`` row ranges of the published batch
            whose results never arrived.
    """

    code = "worker-crash"

    def __init__(
        self, message: str, failed_ranges: Sequence[tuple] = ()
    ) -> None:
        super().__init__(message)
        self.failed_ranges = [tuple(r) for r in failed_ranges]

    def as_dict(self) -> Dict:
        """Structured record including the unfinished shard ranges."""
        record = super().as_dict()
        record["failed_ranges"] = [list(r) for r in self.failed_ranges]
        return record


class StoreError(ReproError):
    """The persistent result store failed (schema mismatch, bad campaign,
    corrupt checkpoint, ...)."""

    code = "store"


class RequestError(ReproError):
    """An API request is malformed (unknown kind, unexpected field, ...).

    Domain violations inside a structurally valid request raise the
    matching domain exception instead (:class:`SpecificationError` for an
    infeasible spec, :class:`StoreError` for an unknown rank metric, ...);
    this class covers the envelope itself.

    Args:
        message: human-readable summary.
        field: name of the offending request field when the rejection is
            attributable to one (``"kind"`` for an unknown request kind);
            serialized into :meth:`as_dict` so HTTP consumers can
            highlight the bad input without parsing the message.
    """

    code = "request"

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.field = field

    def as_dict(self) -> Dict[str, str]:
        """Structured record, including the offending field when known."""
        record = super().as_dict()
        if self.field is not None:
            record["field"] = self.field
        return record


class ServeError(ReproError):
    """The serving layer rejected or could not place a request
    (unknown job, draining server, malformed transport envelope, ...)."""

    code = "serve"


class RateLimitError(ServeError):
    """A tenant exhausted its token bucket; retry after the given delay.

    Args:
        message: human-readable summary.
        retry_after_seconds: seconds until the bucket next has a token
            (the server surfaces it as the ``Retry-After`` header).
    """

    code = "rate-limited"

    def __init__(
        self, message: str, retry_after_seconds: float = 1.0
    ) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds

    def as_dict(self) -> Dict:
        """Structured record including the retry hint."""
        record = super().as_dict()
        record["retry_after_seconds"] = round(self.retry_after_seconds, 3)
        return record


#: Stable HTTP status for every error ``code`` — the single mapping the
#: serving layer (and any other transport) uses to turn a
#: :meth:`ReproError.as_dict` payload into a response status.  Client
#: mistakes (malformed envelopes, domain-invalid requests) are 4xx;
#: infrastructure failures (engine, worker crash) are 5xx.
HTTP_STATUS_BY_CODE: Dict[str, int] = {
    "repro": 500,
    "specification": 400,
    "technology": 400,
    "netlist": 400,
    "cell-library": 400,
    "layout": 422,
    "placement": 422,
    "routing": 422,
    "drc": 422,
    "model": 400,
    "calibration": 422,
    "optimization": 400,
    "simulation": 400,
    "flow": 400,
    "engine": 500,
    "worker-crash": 500,
    "store": 409,
    "request": 400,
    "serve": 503,
    "rate-limited": 429,
}


def http_status_of(error: BaseException) -> int:
    """The HTTP status an error maps to (500 for anything unknown).

    Works on any exception: :class:`ReproError` subclasses resolve
    through :data:`HTTP_STATUS_BY_CODE` by their ``code``; foreign
    exceptions are internal failures (500).
    """
    code = getattr(error, "code", None)
    return HTTP_STATUS_BY_CODE.get(code, 500)
