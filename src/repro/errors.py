"""Exception hierarchy for the EasyACIM reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class at flow boundaries while still being
able to discriminate between configuration, modelling, layout and routing
failures when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the library."""


class SpecificationError(ReproError):
    """A design specification violates an architectural constraint.

    Raised, for example, when ``H * W`` does not equal the requested array
    size or when the ADC precision exceeds the available capacitor groups
    (paper Equation 12).
    """


class TechnologyError(ReproError):
    """The technology description is inconsistent or incomplete."""


class NetlistError(ReproError):
    """A netlist is malformed (dangling nets, duplicate instances, ...)."""


class CellLibraryError(ReproError):
    """The customized cell library does not provide a required cell."""


class LayoutError(ReproError):
    """A layout operation failed (overlaps, out-of-bounds shapes, ...)."""


class PlacementError(LayoutError):
    """The placer could not produce a legal placement."""


class RoutingError(LayoutError):
    """The router could not connect one or more nets."""


class DRCError(LayoutError):
    """A design-rule check failed."""


class ModelError(ReproError):
    """The performance estimation model received invalid parameters."""


class CalibrationError(ModelError):
    """Model calibration against reference data failed to converge."""


class OptimizationError(ReproError):
    """The design-space explorer failed (empty feasible set, ...)."""


class SimulationError(ReproError):
    """The behavioral simulator received an invalid configuration."""


class FlowError(ReproError):
    """The top-level flow controller failed to complete a stage."""


class EngineError(ReproError):
    """The evaluation engine was misconfigured (unknown backend, ...)."""


class StoreError(ReproError):
    """The persistent result store failed (schema mismatch, bad campaign,
    corrupt checkpoint, ...)."""
