"""Hierarchy traversal utilities: walking, counting and flattening.

The estimation model, the layout flow and several tests need to reason
about the full (flattened) device content of a hierarchical macro netlist
— for example counting the 8T SRAM cells of a generated array, or
measuring hierarchy depth for the template-based placer.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.netlist.device import Capacitor, Device, DeviceType, Mosfet, Resistor


def iter_hierarchy(circuit, path: str = "") -> Iterator[Tuple[str, object]]:
    """Yield ``(hierarchical_path, circuit)`` pairs depth-first, top first.

    The top circuit is yielded with its own name as the path; children are
    yielded with ``/``-separated instance paths.
    """
    top_path = path or circuit.name
    yield top_path, circuit
    for instance in circuit.instances:
        child_path = f"{top_path}/{instance.name}"
        yield from iter_hierarchy(instance.reference, child_path)


def hierarchy_depth(circuit) -> int:
    """Number of hierarchy levels below and including ``circuit``."""
    if circuit.is_leaf():
        return 1
    return 1 + max(hierarchy_depth(inst.reference) for inst in circuit.instances)


def count_leaf_instances(circuit) -> Dict[str, int]:
    """Count how many times each leaf circuit appears in the flattened design."""
    counts: Dict[str, int] = {}

    def visit(current, multiplier: int) -> None:
        if current.is_leaf():
            counts[current.name] = counts.get(current.name, 0) + multiplier
            return
        for instance in current.instances:
            visit(instance.reference, multiplier)

    if circuit.is_leaf():
        counts[circuit.name] = 1
    else:
        for instance in circuit.instances:
            visit(instance.reference, 1)
    return counts


def count_devices(circuit) -> Dict[DeviceType, int]:
    """Count primitive devices by type over the flattened hierarchy."""
    counts: Dict[DeviceType, int] = {}

    def visit(current) -> None:
        for device in current.devices:
            counts[device.device_type] = counts.get(device.device_type, 0) + 1
        for instance in current.instances:
            visit(instance.reference)

    visit(circuit)
    return counts


def flatten(circuit, separator: str = "/") -> Dict[str, Device]:
    """Flatten the hierarchy into a mapping from full device path to device.

    Device terminal connectivity is preserved as-is (net names are not
    re-mapped into the top namespace); the flattened view is intended for
    counting and inspection, not for electrical extraction.
    """
    flat: Dict[str, Device] = {}

    def visit(current, prefix: str) -> None:
        for device in current.devices:
            flat[f"{prefix}{device.name}"] = device
        for instance in current.instances:
            visit(instance.reference, f"{prefix}{instance.name}{separator}")

    visit(circuit, "")
    return flat


def total_capacitance(circuit) -> float:
    """Sum of all capacitor values in the flattened hierarchy, in farads."""
    total = 0.0

    def visit(current) -> None:
        nonlocal total
        for device in current.devices:
            if isinstance(device, Capacitor):
                total += device.capacitance
        for instance in current.instances:
            visit(instance.reference)

    visit(circuit)
    return total


def total_transistor_width(circuit) -> float:
    """Sum of MOSFET widths (meters) in the flattened hierarchy."""
    total = 0.0

    def visit(current) -> None:
        nonlocal total
        for device in current.devices:
            if isinstance(device, Mosfet):
                total += device.width * device.fingers
        for instance in current.instances:
            visit(instance.reference)

    visit(circuit)
    return total
