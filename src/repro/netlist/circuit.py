"""Hierarchical circuit database: circuits, instances, nets and pins.

A :class:`Circuit` is a subcircuit definition (equivalent to a SPICE
``.SUBCKT``).  It owns primitive :class:`~repro.netlist.device.Device`
objects, child :class:`Instance` objects referring to other circuits, and
:class:`Net` objects.  Pins declare the circuit's external interface.

The template-based ACIM netlist generator (:mod:`repro.flow.netlist_gen`)
builds the full macro out of these objects, and the hierarchical placer
mirrors this hierarchy when it builds the layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.device import Device


class PinDirection(enum.Enum):
    """Direction of a circuit pin."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"
    SUPPLY = "supply"


@dataclass(frozen=True)
class Pin:
    """An external pin of a circuit.

    Attributes:
        name: pin (and net) name inside the circuit.
        direction: signal direction.
    """

    name: str
    direction: PinDirection = PinDirection.INOUT

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pin name must be non-empty")


@dataclass
class Net:
    """A net within a circuit.

    Attributes:
        name: net name, unique within the circuit.
        is_power: True for supply nets (VDD/VSS/VCM), which receive
            pre-defined routing tracks in the layout flow.
        is_critical: True for nets the router must treat as critical
            (e.g. SAR control nets with pre-defined tracks, paper section 4).
    """

    name: str
    is_power: bool = False
    is_critical: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("net name must be non-empty")


@dataclass
class Instance:
    """An instantiation of a child circuit.

    Attributes:
        name: instance name unique within the parent circuit.
        reference: the instantiated :class:`Circuit`.
        connections: mapping from the child's pin names to parent net names.
    """

    name: str
    reference: "Circuit"
    connections: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instance name must be non-empty")

    def connect(self, pin: str, net: str) -> None:
        """Bind a child pin to a parent net."""
        if not self.reference.has_pin(pin):
            raise NetlistError(
                f"instance {self.name!r}: circuit {self.reference.name!r} "
                f"has no pin {pin!r}"
            )
        self.connections[pin] = net

    def is_fully_connected(self) -> bool:
        """True when every pin of the referenced circuit is bound."""
        return all(pin.name in self.connections for pin in self.reference.pins)


class Circuit:
    """A subcircuit definition.

    Circuits are named containers of pins, nets, primitive devices and child
    instances.  They map one-to-one onto SPICE ``.SUBCKT`` blocks and onto
    hierarchy levels of the template-based placer (paper Figure 7).
    """

    def __init__(self, name: str, pins: Sequence[Pin] = ()) -> None:
        if not name:
            raise NetlistError("circuit name must be non-empty")
        self.name = name
        self._pins: List[Pin] = []
        self._pin_names: Dict[str, Pin] = {}
        self._nets: Dict[str, Net] = {}
        self._devices: Dict[str, Device] = {}
        self._instances: Dict[str, Instance] = {}
        for pin in pins:
            self.add_pin(pin)

    # -- pins ---------------------------------------------------------------

    @property
    def pins(self) -> List[Pin]:
        """External pins in declaration order."""
        return list(self._pins)

    def add_pin(self, pin: Pin) -> Net:
        """Declare an external pin; creates the matching net if needed."""
        if pin.name in self._pin_names:
            raise NetlistError(f"circuit {self.name!r}: duplicate pin {pin.name!r}")
        self._pins.append(pin)
        self._pin_names[pin.name] = pin
        is_power = pin.direction is PinDirection.SUPPLY
        if pin.name not in self._nets:
            self._nets[pin.name] = Net(pin.name, is_power=is_power)
        elif is_power:
            self._nets[pin.name].is_power = True
        return self._nets[pin.name]

    def has_pin(self, name: str) -> bool:
        """True if the circuit declares a pin named ``name``."""
        return name in self._pin_names

    def pin(self, name: str) -> Pin:
        """Return the pin called ``name``."""
        try:
            return self._pin_names[name]
        except KeyError:
            raise NetlistError(f"circuit {self.name!r} has no pin {name!r}")

    # -- nets ---------------------------------------------------------------

    @property
    def nets(self) -> List[Net]:
        """All nets in creation order."""
        return list(self._nets.values())

    def add_net(self, name: str, is_power: bool = False, is_critical: bool = False) -> Net:
        """Create (or fetch) a net by name."""
        if name in self._nets:
            net = self._nets[name]
            net.is_power = net.is_power or is_power
            net.is_critical = net.is_critical or is_critical
            return net
        net = Net(name, is_power=is_power, is_critical=is_critical)
        self._nets[name] = net
        return net

    def has_net(self, name: str) -> bool:
        """True if the circuit contains a net named ``name``."""
        return name in self._nets

    def net(self, name: str) -> Net:
        """Return the net called ``name``."""
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(f"circuit {self.name!r} has no net {name!r}")

    # -- devices ------------------------------------------------------------

    @property
    def devices(self) -> List[Device]:
        """Primitive devices in insertion order."""
        return list(self._devices.values())

    def add_device(self, device: Device) -> Device:
        """Add a primitive device; all of its nets are created implicitly."""
        if device.name in self._devices:
            raise NetlistError(
                f"circuit {self.name!r}: duplicate device {device.name!r}"
            )
        self._devices[device.name] = device
        for net_name in device.terminals.values():
            self.add_net(net_name)
        return device

    # -- instances ----------------------------------------------------------

    @property
    def instances(self) -> List[Instance]:
        """Child instances in insertion order."""
        return list(self._instances.values())

    def add_instance(
        self,
        name: str,
        reference: "Circuit",
        connections: Optional[Dict[str, str]] = None,
    ) -> Instance:
        """Instantiate ``reference`` as a child called ``name``.

        Args:
            name: instance name, unique within this circuit.
            reference: the child circuit definition.
            connections: optional mapping from child pin names to parent nets;
                the parent nets are created implicitly.
        """
        if name in self._instances:
            raise NetlistError(f"circuit {self.name!r}: duplicate instance {name!r}")
        if reference is self:
            raise NetlistError(f"circuit {self.name!r} cannot instantiate itself")
        instance = Instance(name, reference)
        for pin_name, net_name in (connections or {}).items():
            instance.connect(pin_name, net_name)
            self.add_net(net_name)
        self._instances[name] = instance
        return instance

    def instance(self, name: str) -> Instance:
        """Return the child instance called ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise NetlistError(f"circuit {self.name!r} has no instance {name!r}")

    # -- queries ------------------------------------------------------------

    def is_leaf(self) -> bool:
        """True if the circuit has no child instances."""
        return not self._instances

    def net_fanout(self, net_name: str) -> int:
        """Number of device terminals and instance pins attached to a net."""
        count = 0
        for device in self._devices.values():
            count += sum(1 for net in device.terminals.values() if net == net_name)
        for instance in self._instances.values():
            count += sum(1 for net in instance.connections.values() if net == net_name)
        return count

    def dangling_nets(self) -> List[str]:
        """Nets (other than pins) connected to at most one terminal."""
        dangling = []
        for net in self._nets.values():
            if net.name in self._pin_names:
                continue
            if self.net_fanout(net.name) <= 1:
                dangling.append(net.name)
        return dangling

    def validate(self) -> None:
        """Check that every device and instance is fully connected.

        Raises:
            NetlistError: on unconnected device terminals or instance pins.
        """
        for device in self._devices.values():
            if not device.is_fully_connected():
                raise NetlistError(
                    f"circuit {self.name!r}: device {device.name!r} has "
                    f"unconnected terminals"
                )
        for instance in self._instances.values():
            if not instance.is_fully_connected():
                missing = [
                    pin.name
                    for pin in instance.reference.pins
                    if pin.name not in instance.connections
                ]
                raise NetlistError(
                    f"circuit {self.name!r}: instance {instance.name!r} leaves "
                    f"pins {missing} unconnected"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Circuit(name={self.name!r}, pins={len(self._pins)}, "
            f"devices={len(self._devices)}, instances={len(self._instances)})"
        )
