"""Primitive device models used in cell netlists.

The cell library builds every ACIM component (8T SRAM cell, sense amplifier,
comparator, SAR logic, CMOS switches, compute capacitors) from these three
primitive device kinds: MOSFETs, capacitors and resistors.  Devices carry
the electrical sizing needed by the behavioral simulator and the energy
model (widths, lengths, capacitances) but no layout information — layouts
live in :mod:`repro.layout`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class DeviceType(enum.Enum):
    """Primitive device categories."""

    NMOS = "nmos"
    PMOS = "pmos"
    CAPACITOR = "capacitor"
    RESISTOR = "resistor"


class MosType(enum.Enum):
    """MOSFET polarity."""

    NMOS = "nmos"
    PMOS = "pmos"


@dataclass
class Device:
    """Base class for primitive devices.

    Attributes:
        name: instance name unique within its parent circuit (e.g. ``"M1"``).
        terminals: mapping from terminal name to net name.
    """

    name: str
    terminals: Dict[str, str] = field(default_factory=dict)

    #: Terminal names this device type requires, in SPICE card order.
    TERMINAL_ORDER: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name must be non-empty")

    @property
    def device_type(self) -> DeviceType:
        """The :class:`DeviceType` of this device."""
        raise NotImplementedError

    def connect(self, terminal: str, net: str) -> None:
        """Bind a terminal to a net name."""
        if self.TERMINAL_ORDER and terminal not in self.TERMINAL_ORDER:
            raise ValueError(
                f"device {self.name!r} has no terminal {terminal!r}; "
                f"expected one of {self.TERMINAL_ORDER}"
            )
        self.terminals[terminal] = net

    def nets(self) -> Tuple[str, ...]:
        """Net names in terminal order (only connected terminals)."""
        return tuple(
            self.terminals[t] for t in self.TERMINAL_ORDER if t in self.terminals
        )

    def is_fully_connected(self) -> bool:
        """True if every required terminal is bound to a net."""
        return all(t in self.terminals for t in self.TERMINAL_ORDER)


@dataclass
class Mosfet(Device):
    """A MOSFET with drain/gate/source/body terminals.

    Attributes:
        mos_type: NMOS or PMOS.
        width: channel width in meters.
        length: channel length in meters.
        fingers: number of fingers (layout hint, electrically width-neutral).
    """

    mos_type: MosType = MosType.NMOS
    width: float = 100e-9
    length: float = 30e-9
    fingers: int = 1

    TERMINAL_ORDER: Tuple[str, ...] = ("D", "G", "S", "B")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width <= 0 or self.length <= 0:
            raise ValueError(f"MOSFET {self.name!r}: width and length must be positive")
        if self.fingers < 1:
            raise ValueError(f"MOSFET {self.name!r}: fingers must be >= 1")

    @property
    def device_type(self) -> DeviceType:
        return DeviceType.NMOS if self.mos_type is MosType.NMOS else DeviceType.PMOS

    def gate_capacitance(self, cap_per_um: float = 1.0e-15) -> float:
        """Approximate gate capacitance in farads.

        Args:
            cap_per_um: gate capacitance per micrometer of width, from the
                technology's electrical parameters.
        """
        return cap_per_um * (self.width / 1e-6)


@dataclass
class Capacitor(Device):
    """A capacitor (MOM compute capacitor C_F or explicit load C_L).

    Attributes:
        capacitance: capacitance value in farads.
    """

    capacitance: float = 1e-15

    TERMINAL_ORDER: Tuple[str, ...] = ("PLUS", "MINUS")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0:
            raise ValueError(f"capacitor {self.name!r}: capacitance must be positive")

    @property
    def device_type(self) -> DeviceType:
        return DeviceType.CAPACITOR


@dataclass
class Resistor(Device):
    """A resistor.

    Attributes:
        resistance: resistance value in ohms.
    """

    resistance: float = 1e3

    TERMINAL_ORDER: Tuple[str, ...] = ("PLUS", "MINUS")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name!r}: resistance must be positive")

    @property
    def device_type(self) -> DeviceType:
        return DeviceType.RESISTOR
