"""SPICE netlist writing and a small structural SPICE parser.

The writer emits hierarchical ``.SUBCKT`` blocks for a circuit and every
circuit it references, using standard element cards (``M`` for MOSFETs,
``C`` for capacitors, ``R`` for resistors, ``X`` for subcircuit instances).
The parser reads the same dialect back into :class:`~repro.netlist.circuit.Circuit`
objects; it is a structural parser (connectivity and sizing), not a
simulator front-end, which is all the cell library and the netlist
generator need.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit, Pin, PinDirection
from repro.netlist.device import Capacitor, Device, Mosfet, MosType, Resistor
from repro.netlist.traversal import iter_hierarchy

_SI_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}


def format_si(value: float) -> str:
    """Format a value with a SPICE engineering suffix (1e-15 -> ``1f``)."""
    for suffix, scale in (
        ("t", 1e12), ("g", 1e9), ("meg", 1e6), ("k", 1e3), ("", 1.0),
        ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15),
        ("a", 1e-18),
    ):
        if value == 0.0:
            return "0"
        magnitude = abs(value) / scale
        if 1.0 <= magnitude < 1000.0:
            text = f"{value / scale:.6g}"
            return f"{text}{suffix}"
    return f"{value:.6g}"


def parse_si(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    token = token.strip().lower()
    match = re.fullmatch(r"([-+]?[\d.]+(?:e[-+]?\d+)?)(meg|[tgkmunpfa])?", token)
    if not match:
        raise NetlistError(f"cannot parse SPICE number {token!r}")
    value = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        value *= _SI_SUFFIXES[suffix]
    return value


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_spice(circuit: Circuit, title: Optional[str] = None) -> str:
    """Serialise ``circuit`` and its full hierarchy to SPICE text.

    Subcircuits are emitted bottom-up so every ``X`` card refers to an
    already-defined ``.SUBCKT``.

    Args:
        circuit: the top circuit.
        title: optional title line; defaults to the circuit name.
    """
    lines: List[str] = [f"* {title or circuit.name}"]
    emitted: List[str] = []
    for sub in _bottom_up(circuit):
        lines.append("")
        lines.extend(_write_subckt(sub))
        emitted.append(sub.name)
    lines.append("")
    lines.append(".END")
    return "\n".join(lines) + "\n"


def _bottom_up(circuit: Circuit) -> List[Circuit]:
    """Return the hierarchy of ``circuit`` ordered children-before-parents."""
    ordered: List[Circuit] = []
    seen: Dict[str, Circuit] = {}

    def visit(current: Circuit) -> None:
        if current.name in seen:
            if seen[current.name] is not current:
                raise NetlistError(
                    f"two different circuits share the name {current.name!r}"
                )
            return
        seen[current.name] = current
        for instance in current.instances:
            visit(instance.reference)
        ordered.append(current)

    visit(circuit)
    return ordered


def _write_subckt(circuit: Circuit) -> List[str]:
    pin_names = " ".join(pin.name for pin in circuit.pins)
    lines = [f".SUBCKT {circuit.name} {pin_names}".rstrip()]
    for device in circuit.devices:
        lines.append(_device_card(device))
    for instance in circuit.instances:
        nets = " ".join(
            instance.connections[pin.name] for pin in instance.reference.pins
        )
        lines.append(f"X{instance.name} {nets} {instance.reference.name}")
    lines.append(f".ENDS {circuit.name}")
    return lines


def _device_card(device: Device) -> str:
    nets = " ".join(device.nets())
    if isinstance(device, Mosfet):
        model = "nch" if device.mos_type is MosType.NMOS else "pch"
        return (
            f"M{device.name} {nets} {model} "
            f"W={format_si(device.width)} L={format_si(device.length)} "
            f"M={device.fingers}"
        )
    if isinstance(device, Capacitor):
        return f"C{device.name} {nets} {format_si(device.capacitance)}"
    if isinstance(device, Resistor):
        return f"R{device.name} {nets} {format_si(device.resistance)}"
    raise NetlistError(f"cannot write device of type {type(device).__name__}")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_spice(text: str) -> Dict[str, Circuit]:
    """Parse SPICE text into a dictionary of circuits keyed by name.

    Supports ``.SUBCKT``/``.ENDS`` blocks containing M/C/R element cards and
    X subcircuit instances.  Continuation lines starting with ``+`` are
    joined; ``*`` comments and blank lines are ignored.
    """
    lines = _preprocess(text)
    circuits: Dict[str, Circuit] = {}
    current: Optional[Circuit] = None
    pending_instances: List[Tuple[Circuit, str, List[str], str]] = []

    for line in lines:
        upper = line.upper()
        if upper.startswith(".SUBCKT"):
            tokens = line.split()
            if len(tokens) < 2:
                raise NetlistError(f"malformed .SUBCKT line: {line!r}")
            name = tokens[1]
            if current is not None:
                raise NetlistError(f"nested .SUBCKT {name!r} is not supported")
            pins = [Pin(pin_name, _guess_direction(pin_name)) for pin_name in tokens[2:]]
            current = Circuit(name, pins)
        elif upper.startswith(".ENDS"):
            if current is None:
                raise NetlistError(".ENDS without matching .SUBCKT")
            circuits[current.name] = current
            current = None
        elif upper.startswith(".END"):
            break
        elif upper.startswith("."):
            continue  # ignore other control cards (.PARAM, .OPTION, ...)
        else:
            if current is None:
                # top-level element cards outside subcircuits are ignored
                continue
            _parse_element(line, current, pending_instances)

    if current is not None:
        raise NetlistError(f"unterminated .SUBCKT {current.name!r}")

    for parent, inst_name, nets, ref_name in pending_instances:
        if ref_name not in circuits:
            raise NetlistError(
                f"instance {inst_name!r} references undefined subcircuit {ref_name!r}"
            )
        reference = circuits[ref_name]
        if len(nets) != len(reference.pins):
            raise NetlistError(
                f"instance {inst_name!r}: {len(nets)} nets for "
                f"{len(reference.pins)} pins of {ref_name!r}"
            )
        connections = {
            pin.name: net for pin, net in zip(reference.pins, nets)
        }
        parent.add_instance(inst_name, reference, connections)

    return circuits


def _preprocess(text: str) -> List[str]:
    """Strip comments, join continuation lines."""
    raw_lines = text.splitlines()
    joined: List[str] = []
    for raw in raw_lines:
        line = raw.split("$", 1)[0].rstrip()
        if not line or line.lstrip().startswith("*"):
            continue
        if line.startswith("+") and joined:
            joined[-1] += " " + line[1:].strip()
        else:
            joined.append(line.strip())
    return joined


def _guess_direction(pin_name: str) -> PinDirection:
    upper = pin_name.upper()
    if upper in ("VDD", "VSS", "VCM", "GND", "VDDA", "VSSA"):
        return PinDirection.SUPPLY
    return PinDirection.INOUT


def _parse_element(
    line: str,
    circuit: Circuit,
    pending_instances: List[Tuple[Circuit, str, List[str], str]],
) -> None:
    tokens = line.split()
    card = tokens[0]
    kind = card[0].upper()
    name = card[1:] or card
    if kind == "M":
        if len(tokens) < 6:
            raise NetlistError(f"malformed MOSFET card: {line!r}")
        nets = tokens[1:5]
        model = tokens[5].lower()
        params = _parse_params(tokens[6:])
        mos_type = MosType.PMOS if model.startswith("p") else MosType.NMOS
        device = Mosfet(
            name=name,
            mos_type=mos_type,
            width=params.get("w", 100e-9),
            length=params.get("l", 30e-9),
            fingers=int(params.get("m", 1)),
        )
        for terminal, net in zip(device.TERMINAL_ORDER, nets):
            device.connect(terminal, net)
        circuit.add_device(device)
    elif kind == "C":
        if len(tokens) < 4:
            raise NetlistError(f"malformed capacitor card: {line!r}")
        device = Capacitor(name=name, capacitance=parse_si(tokens[3]))
        device.connect("PLUS", tokens[1])
        device.connect("MINUS", tokens[2])
        circuit.add_device(device)
    elif kind == "R":
        if len(tokens) < 4:
            raise NetlistError(f"malformed resistor card: {line!r}")
        device = Resistor(name=name, resistance=parse_si(tokens[3]))
        device.connect("PLUS", tokens[1])
        device.connect("MINUS", tokens[2])
        circuit.add_device(device)
    elif kind == "X":
        if len(tokens) < 3:
            raise NetlistError(f"malformed instance card: {line!r}")
        nets = tokens[1:-1]
        ref_name = tokens[-1]
        pending_instances.append((circuit, name, nets, ref_name))
    else:
        raise NetlistError(f"unsupported element card {card!r}")


def _parse_params(tokens: Iterable[str]) -> Dict[str, float]:
    params: Dict[str, float] = {}
    for token in tokens:
        if "=" not in token:
            continue
        key, value = token.split("=", 1)
        params[key.strip().lower()] = parse_si(value)
    return params
