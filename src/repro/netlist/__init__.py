"""Hierarchical netlist data structures and SPICE I/O.

The customized cell library (paper Figure 4) provides *netlists* for every
ACIM component and the template-based netlist generator assembles them into
the full macro netlist.  This package supplies the underlying circuit
database: devices, hierarchical circuits with instances/nets/pins, SPICE
reading and writing, and traversal utilities (flattening, counting,
hierarchy walks).
"""

from repro.netlist.device import (
    Capacitor,
    Device,
    DeviceType,
    Mosfet,
    MosType,
    Resistor,
)
from repro.netlist.circuit import Circuit, Instance, Net, Pin, PinDirection
from repro.netlist.spice import parse_spice, write_spice
from repro.netlist.traversal import (
    count_devices,
    count_leaf_instances,
    flatten,
    hierarchy_depth,
    iter_hierarchy,
)

__all__ = [
    "Capacitor",
    "Device",
    "DeviceType",
    "Mosfet",
    "MosType",
    "Resistor",
    "Circuit",
    "Instance",
    "Net",
    "Pin",
    "PinDirection",
    "parse_spice",
    "write_spice",
    "count_devices",
    "count_leaf_instances",
    "flatten",
    "hierarchy_depth",
    "iter_hierarchy",
]
