"""Published state-of-the-art ACIM reference designs (paper Figure 10)."""

from repro.sota.references import (
    SOTA_DESIGNS,
    SotaDesign,
    compare_with_design_space,
    design_by_label,
)

__all__ = [
    "SOTA_DESIGNS",
    "SotaDesign",
    "compare_with_design_space",
    "design_by_label",
]
