"""Reference datapoints of published SOTA ACIM macros.

Figure 10 of the paper compares the EasyACIM design space against three
recent JSSC/ISSCC silicon designs on the two most common ACIM metrics,
energy efficiency (TOPS/W) and area (F^2/bit):

* Design A — Yao et al., JSSC 2023: fully bit-flexible charge-domain CIM
  with multi-functional computing bit cell (the design whose capacitor
  reuse inspired EasyACIM's architecture),
* Design B — Yu et al., JSSC 2022: 65 nm 8T SRAM CIM with column ADCs,
* Design C — Dong et al., ISSCC 2020: 7 nm FinFET 351 TOPS/W macro.

The numbers are the published headline figures normalised the way the
paper plots them (1b-equivalent TOPS/W, F^2/bit).  They are fixed scatter
points used for comparison; nothing in the reproduction depends on their
exact values beyond the Figure-10 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ReproError
from repro.dse.problem import EvaluatedDesign


@dataclass(frozen=True)
class SotaDesign:
    """One published reference design.

    Attributes:
        label: short label used in the Figure-10 comparison ("A", "B", "C").
        name: citation-style name.
        venue: publication venue and year.
        technology_nm: process node in nanometers.
        energy_efficiency_tops_w: published energy efficiency in TOPS/W
            (1b-equivalent).
        area_f2_per_bit: macro area normalised to F^2 per bit cell.
        adc_bits: readout precision in bits.
        array_size_kb: macro capacity in kilobits.
    """

    label: str
    name: str
    venue: str
    technology_nm: int
    energy_efficiency_tops_w: float
    area_f2_per_bit: float
    adc_bits: int
    array_size_kb: int

    def as_dict(self) -> dict:
        """Flat dictionary for reporting."""
        return {
            "label": self.label,
            "name": self.name,
            "venue": self.venue,
            "tech_nm": self.technology_nm,
            "tops_per_watt": self.energy_efficiency_tops_w,
            "area_f2_per_bit": self.area_f2_per_bit,
            "adc_bits": self.adc_bits,
            "array_kb": self.array_size_kb,
        }


#: The three SOTA designs of Figure 10.
SOTA_DESIGNS: List[SotaDesign] = [
    SotaDesign(
        label="A",
        name="Yao et al. (bit-flexible multi-functional CIM)",
        venue="JSSC 2023",
        technology_nm=28,
        energy_efficiency_tops_w=600.0,
        area_f2_per_bit=5200.0,
        adc_bits=5,
        array_size_kb=16,
    ),
    SotaDesign(
        label="B",
        name="Yu et al. (8T SRAM CIM with column ADCs)",
        venue="JSSC 2022",
        technology_nm=65,
        energy_efficiency_tops_w=250.0,
        area_f2_per_bit=3100.0,
        adc_bits=4,
        array_size_kb=16,
    ),
    SotaDesign(
        label="C",
        name="Dong et al. (7nm FinFET CIM macro)",
        venue="ISSCC 2020",
        technology_nm=7,
        energy_efficiency_tops_w=351.0,
        area_f2_per_bit=2400.0,
        adc_bits=4,
        array_size_kb=64,
    ),
]


def design_by_label(label: str) -> SotaDesign:
    """Look up a reference design by its Figure-10 label."""
    for design in SOTA_DESIGNS:
        if design.label == label:
            return design
    raise ReproError(f"no SOTA reference design labelled {label!r}")


def compare_with_design_space(
    designs: Sequence[EvaluatedDesign],
    references: Sequence[SotaDesign] = tuple(SOTA_DESIGNS),
) -> Dict[str, dict]:
    """Compare a generated design space against the SOTA references.

    For each reference the comparison reports whether the generated space
    contains a solution that is at least as energy-efficient, at least as
    area-efficient, and one that matches-or-beats it on both axes at once
    (i.e. the reference is dominated on the Figure-10 plane).
    """
    report: Dict[str, dict] = {}
    for reference in references:
        better_energy = [
            d for d in designs
            if d.metrics.tops_per_watt >= reference.energy_efficiency_tops_w
        ]
        better_area = [
            d for d in designs
            if d.metrics.area_f2_per_bit <= reference.area_f2_per_bit
        ]
        dominating = [
            d for d in designs
            if d.metrics.tops_per_watt >= reference.energy_efficiency_tops_w
            and d.metrics.area_f2_per_bit <= reference.area_f2_per_bit
        ]
        report[reference.label] = {
            "reference": reference.as_dict(),
            "solutions_with_better_efficiency": len(better_energy),
            "solutions_with_better_area": len(better_area),
            "solutions_dominating": len(dominating),
            "covered": bool(better_energy) and bool(better_area),
        }
    return report
