"""The :class:`Session`: one typed entry point for every workflow.

A session owns the shared execution substrate — one
:class:`~repro.engine.engine.EvaluationEngine` (backend, worker pool,
memoization cache), an optional persistent
:class:`~repro.store.result_store.ResultStore`, the
:class:`~repro.model.estimator.ModelParameters` bundle and the technology
— and executes typed requests against it:

    from repro.api import ExploreRequest, Session, SessionConfig

    with Session.from_config(SessionConfig(backend="process")) as session:
        result = session.explore(ExploreRequest(array_size=16 * 1024))
        print(result.payload["pareto_size"], result.engine_stats)

Every consumer (the CLI, the tests, a future HTTP service or job queue)
goes through this layer, so backend/worker/store/model conventions live in
exactly one place.  :class:`SessionConfig` is JSON-serializable like the
requests, so a whole job description — session settings plus request — can
cross a wire.

Determinism: workflows share the session engine's cache, and design
evaluation is pure, so running requests in any order never changes their
results — a fixed-seed :class:`~repro.api.requests.ExploreRequest` returns
the Pareto front a direct :class:`~repro.dse.explorer._ExplorerCore` run
produces (regression-tested bit-identically).  Physical workflows share
the session's :attr:`~Session.pipeline`, whose macro/artifact cache is
regression-tested geometry-exact (``docs/physical.md``).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.api.requests import (
    ApiRequest,
    CampaignRequest,
    EstimateRequest,
    ExploreRequest,
    FlowRequest,
    LayoutRequest,
    LibraryRequest,
    QueryRequest,
    ValidateSnrRequest,
    request_from_dict,
)
from repro.api.results import ApiResult
from repro.arch.batch import SpecBatch
from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import default_cell_library
from repro.dse.distill import DistillationCriteria, distill
from repro.dse.exhaustive import evaluate_all
from repro.dse.explorer import ExplorationResult, _ExplorerCore
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import pareto_front
from repro.dse.sensitivity import SensitivityAnalyzer
from repro.engine import EvaluationCache, EvaluationEngine, validate_backend
from repro.errors import EngineError, RequestError, StoreError, TechnologyError
from repro.flow.controller import FlowInputs, _FlowCore
from repro.model.estimator import ACIMEstimator, ModelParameters
from repro.obs import MetricsRegistry, get_tracer
from repro.physical.macro_library import MACRO_STAGE
from repro.physical.pipeline import PhysicalPipeline
from repro.store.campaign import _CampaignManagerCore
from repro.store.result_store import ResultStore
from repro.technology.tech import generic28

#: Technology factories a session can be configured with by name.
TECHNOLOGIES: Dict[str, Callable] = {
    "generic28": generic28,
}


@dataclass(frozen=True)
class SessionConfig:
    """Serializable execution settings shared by every request a session runs.

    Attributes:
        backend: evaluation-engine backend (``serial``/``thread``/
            ``process``).
        workers: engine pool size (None: the machine's CPU count).
        store: path of the persistent SQLite result store (None: no
            persistence; campaigns and queries then require a store to be
            injected programmatically).
        cache_size: private evaluation-cache capacity (None: the
            process-wide shared cache).
        technology: named technology the physical workflows build on
            (see :data:`TECHNOLOGIES`).
        calibrated_model: use :meth:`ModelParameters.calibrated` (fitted
            simplified-SNR constants) instead of the stock bundle.
    """

    backend: str = "serial"
    workers: Optional[int] = None
    store: Optional[str] = None
    cache_size: Optional[int] = None
    technology: str = "generic28"
    calibrated_model: bool = False

    def validate(self) -> "SessionConfig":
        """Raise a structured :mod:`repro.errors` exception when invalid."""
        validate_backend(self.backend)
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise EngineError(f"workers must be a positive integer, got {self.workers!r}")
        if self.cache_size is not None and (
            not isinstance(self.cache_size, int) or self.cache_size < 1
        ):
            raise EngineError(
                f"cache_size must be a positive integer, got {self.cache_size!r}"
            )
        if self.technology not in TECHNOLOGIES:
            raise TechnologyError(
                f"unknown technology {self.technology!r}; "
                f"expected one of {sorted(TECHNOLOGIES)}"
            )
        return self

    def to_dict(self) -> dict:
        """Serializable dictionary (the request-side twin of ``from_dict``)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SessionConfig":
        """Build (and validate) a config from a plain dictionary."""
        if not isinstance(data, dict):
            raise RequestError(
                f"session config must be a dict, got {type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise RequestError(
                f"unknown session config field(s) {', '.join(unknown)}"
            )
        try:
            config = cls(**data)
        except TypeError as error:
            raise RequestError(f"cannot build SessionConfig: {error}")
        return config.validate()


class Session:
    """Executes typed API requests on one shared engine/store/model setup.

    Args:
        config: execution settings (defaults to a serial, store-less
            session on the shared cache).
        estimator: estimation model override (defaults to the config's
            stock or calibrated bundle).
        engine: externally owned engine to run on (flushed, never closed,
            by this session).
        store: externally owned result store (takes precedence over
            ``config.store``; never closed by this session).

    Sessions are context managers; :meth:`close` releases whatever the
    session owns (engine pool, store connection) and is idempotent.
    """

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        *,
        estimator: Optional[ACIMEstimator] = None,
        engine: Optional[EvaluationEngine] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.config = (config or SessionConfig()).validate()
        # One registry spans the whole session: the engine, the store and
        # the physical pipeline all record into it, so submit() can attach
        # a single cross-subsystem metrics delta to each result.  A
        # borrowed engine brings its own registry (its owner may already
        # be diffing it); the session joins rather than replaces it.
        self.metrics: MetricsRegistry = (
            engine.metrics if engine is not None else MetricsRegistry()
        )
        self._owns_store = store is None and self.config.store is not None
        self.store: Optional[ResultStore] = store
        if self._owns_store:
            self.store = ResultStore(self.config.store, metrics=self.metrics)
        elif store is not None and store.metrics is None:
            store.metrics = self.metrics
        try:
            self.estimator = estimator or ACIMEstimator(
                ModelParameters.calibrated()
                if self.config.calibrated_model else None
            )
            self._owns_engine = engine is None
            self.engine = engine or EvaluationEngine(
                self.config.backend,
                workers=self.config.workers,
                cache=(
                    EvaluationCache(self.config.cache_size)
                    if self.config.cache_size is not None
                    else None
                ),
                store=self.store,
                metrics=self.metrics,
            )
        except BaseException:
            # Engine/estimator construction failed (e.g. corrupt store rows
            # during warm-start hydration): don't leak the SQLite handle we
            # just opened — close() is unreachable on a half-built session.
            if self._owns_store and self.store is not None:
                self.store.close()
            raise
        self._technology = None
        self._library = None
        self._pipeline: Optional[PhysicalPipeline] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def from_config(
        cls, config: Union[SessionConfig, dict, None]
    ) -> "Session":
        """The canonical constructor: settings in, ready session out.

        Accepts a :class:`SessionConfig` or its dict form (so a JSON job
        description deserializes straight into a session).
        """
        if isinstance(config, dict):
            config = SessionConfig.from_dict(config)
        return cls(config)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (a closed session stays closed)."""
        return self._closed

    def close(self) -> None:
        """Drain and release everything the session owns; idempotent.

        Draining is complete and ordered: the engine's write-behind store
        batch is flushed (and its worker pool torn down when owned), so
        every computed evaluation and every physical artifact is durable
        before the store connection closes.  The store closes even when
        engine teardown raises, and a second ``close()`` — e.g. a signal
        handler racing a context-manager exit during server shutdown — is
        a no-op rather than a double release.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._owns_engine:
                self.engine.close()
            else:
                self.engine.flush_store()
        finally:
            if self._owns_store and self.store is not None:
                self.store.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared substrate -----------------------------------------------------

    @property
    def technology(self):
        """The session's technology (built once, on first physical use)."""
        if self._technology is None:
            self._technology = TECHNOLOGIES[self.config.technology]()
        return self._technology

    @property
    def library(self):
        """The customized cell library on the session technology."""
        if self._library is None:
            self._library = default_cell_library(self.technology)
        return self._library

    @property
    def pipeline(self) -> PhysicalPipeline:
        """The session's shared physical pipeline (built on first use).

        All physical workflows of the session run through it, so solved
        macros are reused across requests; with a store attached, the
        macro cache also persists across sessions and processes
        (``docs/physical.md``).
        """
        if self._pipeline is None:
            self._pipeline = PhysicalPipeline(
                self.library, store=self.store, metrics=self.metrics
            )
        return self._pipeline

    def _require_store(self, kind: str) -> ResultStore:
        if self.store is None:
            raise StoreError(
                f"{kind} requests need a persistent result store; "
                "create the session with SessionConfig(store=...)"
            )
        return self.store

    def _finish(
        self,
        kind: str,
        start: float,
        baseline,
        payload: Dict[str, Any],
        status: str = "ok",
        warnings: Optional[List[str]] = None,
        artifacts: Optional[Dict[str, Any]] = None,
    ) -> ApiResult:
        """Assemble the result envelope with per-call engine-stat deltas."""
        return ApiResult(
            kind=kind,
            status=status,
            payload=payload,
            warnings=warnings or [],
            engine_stats=self.engine.stats.since(baseline).as_dict(),
            runtime_seconds=time.perf_counter() - start,
            artifacts=artifacts or {},
        )

    @staticmethod
    def _merge_physical_stats(result: ApiResult, physical_stats: dict) -> None:
        """Fold per-stage pipeline timings into the envelope's engine stats.

        Scripted consumers read one flat ``engine_stats`` dictionary; the
        pipeline's stage timings and cache hits join it under
        ``stage_<name>_seconds`` / ``stage_<name>_cache_hits`` keys, next
        to the macro reuse counters.
        """
        if not physical_stats:
            return
        for name, stage in physical_stats.get("stages", {}).items():
            result.engine_stats[f"stage_{name}_seconds"] = stage["seconds"]
            result.engine_stats[f"stage_{name}_cache_hits"] = stage["cache_hits"]
        result.engine_stats["macros_built"] = physical_stats.get("macros_built", 0)
        result.engine_stats["macros_reused"] = physical_stats.get("macros_reused", 0)

    # -- dispatch -------------------------------------------------------------

    def submit(self, request: Union[ApiRequest, dict]) -> ApiResult:
        """Execute any request (typed object or its dict form).

        The result carries a per-request delta of the session metrics
        registry (:attr:`ApiResult.metrics`) and, when tracing is
        enabled, the active trace id — the whole request runs inside an
        ``api.<kind>`` root span.
        """
        if isinstance(request, dict):
            request = request_from_dict(request)
        kind = type(request).kind
        handler = self._HANDLERS.get(kind)
        if handler is None:
            raise RequestError(
                f"session cannot handle request kind "
                f"{getattr(type(request), 'kind', None)!r}"
            )
        tracer = get_tracer()
        before = self.metrics.snapshot()
        with tracer.span(f"api.{kind}"):
            result = handler(self, request)
        result.metrics = self.metrics.since(before)
        if tracer.enabled:
            result.trace_id = tracer.trace_id
        return result

    # -- workflows ------------------------------------------------------------

    def estimate(self, request: EstimateRequest) -> ApiResult:
        """Evaluate the estimation model for one design point (or sweep)."""
        request.validate()
        spec = request.spec()
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        if request.adc_sweep:
            # Highest precision the CDAC grouping supports: H/L >= 2^B_ADC.
            max_feasible_bits = spec.local_arrays_per_column.bit_length() - 1
            specs: Union[SpecBatch, List[ACIMDesignSpec]] = SpecBatch.from_product(
                [spec.height], [spec.local_array_size],
                range(1, max_feasible_bits + 1),
                array_size=spec.array_size,
            )
        else:
            specs = [spec]
        metrics = self.engine.evaluate_specs(self.estimator, specs)
        return self._finish(
            request.kind, start, baseline,
            payload={"metrics": [m.as_dict() for m in metrics]},
            artifacts={"metrics": metrics},
        )

    def explore(self, request: ExploreRequest) -> ApiResult:
        """Design-space exploration (NSGA-II, exhaustive or sensitivity)."""
        request.validate()
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        if request.method == "sensitivity":
            return self._explore_sensitivity(request, start, baseline)
        if request.method == "exhaustive":
            # Build the grid here so the request's height bounds apply
            # (evaluate_all's own enumeration has no height arguments).
            grid = SpecBatch.enumerate(
                request.array_size,
                local_array_sizes=request.local_array_sizes,
                max_adc_bits=request.max_adc_bits,
                min_height=request.min_height,
                max_height=request.max_height,
            )
            designs = evaluate_all(
                request.array_size,
                estimator=self.estimator,
                engine=self.engine,
                batch=grid,
            )
            front = (
                pareto_front([design.objectives for design in designs])
                if designs else []
            )
            pareto_set = sorted(
                (designs[i] for i in front), key=lambda d: d.spec.as_tuple()
            )
            evaluations = len(designs)
            exploration: Optional[ExplorationResult] = None
        else:
            explorer = _ExplorerCore(
                estimator=self.estimator,
                config=NSGA2Config(
                    population_size=request.population,
                    generations=request.generations,
                    seed=request.seed,
                    backend=self.config.backend,
                    workers=self.config.workers,
                ),
                local_array_sizes=request.local_array_sizes,
                max_adc_bits=request.max_adc_bits,
                engine=self.engine,
                store=self.store,
                surrogate=request.surrogate,
                screen_fraction=request.screen_fraction,
            )
            if request.surrogate == "refine":
                self._require_store("explore(surrogate='refine')")
            exploration = explorer.explore(
                request.array_size,
                min_height=request.min_height,
                max_height=request.max_height,
            )
            pareto_set = exploration.pareto_set
            evaluations = exploration.evaluations
        criteria = self._criteria_of(request)
        distilled = distill(pareto_set, criteria) if criteria else list(pareto_set)
        payload = {
            "array_size": request.array_size,
            "method": request.method,
            "evaluations": evaluations,
            "pareto_size": len(pareto_set),
            "distilled_size": len(distilled),
            "pareto": [d.metrics.as_dict() for d in pareto_set],
            "distilled": [d.metrics.as_dict() for d in distilled],
        }
        if request.surrogate != "off" and exploration is not None:
            payload["surrogate"] = dict(exploration.surrogate)
        return self._finish(
            request.kind, start, baseline, payload,
            artifacts={
                "pareto_set": pareto_set,
                "distilled": distilled,
                "exploration": exploration,
            },
        )

    def _explore_sensitivity(
        self, request: ExploreRequest, start: float, baseline
    ) -> ApiResult:
        analyzer = SensitivityAnalyzer(
            base=self.estimator.parameters, engine=self.engine
        )
        kwargs: Dict[str, Any] = {
            "relative_change": request.relative_change,
            "local_array_sizes": request.local_array_sizes,
            "max_adc_bits": request.max_adc_bits,
            "min_height": request.min_height,
            "max_height": request.max_height,
        }
        if request.sensitivity_parameters is not None:
            kwargs["parameters"] = request.sensitivity_parameters
        rows = analyzer.frontier_sensitivity(request.array_size, **kwargs)
        return self._finish(
            request.kind, start, baseline,
            payload={
                "array_size": request.array_size,
                "method": request.method,
                "relative_change": request.relative_change,
                "sensitivity": [dataclasses.asdict(row) for row in rows],
            },
            artifacts={"sensitivity": rows},
        )

    def campaign(self, request: CampaignRequest) -> ApiResult:
        """Start or resume a named, checkpointed exploration campaign."""
        request.validate()
        store = self._require_store(request.kind)
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        manager = _CampaignManagerCore(
            store,
            estimator=self.estimator,
            checkpoint_every=request.checkpoint_every,
            engine=self.engine,
        )
        if request.action == "resume":
            outcome = manager.resume(
                request.name, stop_after_generations=request.stop_after
            )
        else:
            outcome = manager.run(
                request.name,
                request.array_size,
                config=NSGA2Config(
                    population_size=request.population,
                    generations=request.generations,
                    seed=request.seed,
                    backend=self.config.backend,
                    workers=self.config.workers,
                ),
                stop_after_generations=request.stop_after,
                shards=request.shards,
                surrogate=request.surrogate,
                screen_fraction=request.screen_fraction,
            )
        payload = {
            "name": outcome.name,
            "array_size": outcome.array_size,
            "campaign_status": outcome.status,
            "generations_done": outcome.generations_done,
            "total_generations": outcome.total_generations,
            "evaluations": outcome.evaluations,
            "resumed": outcome.resumed,
            "shards": outcome.shard_stats.get("shards", 0),
            "pareto": [d.metrics.as_dict() for d in outcome.pareto_set],
        }
        if outcome.surrogate:
            # Added only in surrogate modes so plain campaign payloads
            # stay byte-identical to earlier releases.
            payload["surrogate"] = dict(outcome.surrogate)
        return self._finish(
            request.kind, start, baseline, payload,
            status="ok" if outcome.status == "completed" else "interrupted",
            artifacts={"result": outcome},
        )

    def flow(self, request: FlowRequest) -> ApiResult:
        """The end-to-end flow: explore, distill, netlists, layouts."""
        request.validate()
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        inputs = FlowInputs(
            array_size=request.array_size,
            technology=self.technology,
            library=self.library,
            criteria=self._criteria_of(request, name="flow"),
            nsga2=NSGA2Config(
                population_size=request.population,
                generations=request.generations,
                seed=request.seed,
                backend=self.config.backend,
                workers=self.config.workers,
            ),
            model=self.estimator.parameters,
            max_layouts=request.max_layouts,
            backend=self.config.backend,
            workers=self.config.workers,
            store=self.store,
            campaign_name=request.campaign_name,
            engine=self.engine,
            reuse=request.reuse,
            pipeline=self.pipeline if request.reuse != "off" else None,
        )
        outcome = _FlowCore(inputs).run(
            generate_netlists=request.generate_netlists,
            generate_layouts=request.generate_layouts,
            route_columns=request.route_columns,
            output_dir=request.output_dir,
        )
        payload = {
            "array_size": request.array_size,
            "pareto_size": len(outcome.exploration.pareto_set),
            "distilled_size": len(outcome.distilled),
            "netlists": len(outcome.netlists),
            "distilled": [d.metrics.as_dict() for d in outcome.distilled],
            "layouts": {
                str(list(key)): report.as_dict()
                for key, report in outcome.layouts.items()
            },
            "layout_files": {
                str(list(key)): {
                    "gds_path": report.gds_path,
                    "def_path": report.def_path,
                }
                for key, report in outcome.layouts.items()
            },
            "reuse": request.reuse,
            "physical_stats": outcome.physical_stats,
        }
        result = self._finish(
            request.kind, start, baseline, payload,
            artifacts={"result": outcome},
        )
        self._merge_physical_stats(result, outcome.physical_stats)
        return result

    def query(self, request: QueryRequest) -> ApiResult:
        """Query the persistent store (design points or campaigns)."""
        request.validate()
        store = self._require_store(request.kind)
        # Read-your-writes: evaluations still sitting in the engine's
        # write-behind buffer must be visible to queries on this session.
        self.engine.flush_store()
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        if request.what == "campaigns":
            records = store.list_campaigns()
            payload = {
                "store": store.stats(),
                "campaigns": [record.as_dict() for record in records],
                "run_metrics": store.list_run_metrics(),
            }
            return self._finish(
                request.kind, start, baseline, payload,
                artifacts={"campaigns": records},
            )
        entries, total = store.query_page(
            criteria=self._criteria_of(request, name="api-query"),
            pareto_only=request.pareto_only,
            rank_by=request.rank_by,
            limit=request.limit,
            offset=request.offset,
        )
        payload = {
            "rank_by": request.rank_by,
            "pareto_only": request.pareto_only,
            "count": len(entries),
            "total": total,
            "limit": request.limit,
            "offset": request.offset,
            "designs": [entry.as_dict() for entry in entries],
        }
        return self._finish(
            request.kind, start, baseline, payload,
            artifacts={"entries": entries},
        )

    def layout(self, request: LayoutRequest) -> ApiResult:
        """Netlist + layout (+ optional SPICE/testbench/LEF) for one point."""
        request.validate()
        spec = request.spec()
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        files: Dict[str, str] = {}
        output_dir = None
        if request.output_dir is not None:
            output_dir = Path(request.output_dir)
            output_dir.mkdir(parents=True, exist_ok=True)

        from repro.flow.netlist_gen import TemplateNetlistGenerator
        from repro.flow.layout_gen import LayoutGenerator

        # Both generators run on the session pipeline, so repeated layout
        # requests (and flow runs) share one macro/artifact cache.
        physical_baseline = self.pipeline.stats.snapshot()
        netlist = TemplateNetlistGenerator(
            self.library, pipeline=self.pipeline
        ).generate(spec)
        if request.spice:
            from repro.netlist.spice import write_spice

            spice_path = output_dir / f"{netlist.name}.sp"
            spice_path.write_text(write_spice(netlist))
            files["spice"] = str(spice_path)
        if request.testbench:
            from repro.flow.testbench import TestbenchGenerator

            tb_path = output_dir / f"{netlist.name}_tb.sp"
            TestbenchGenerator().write(spec, netlist, tb_path)
            files["testbench"] = str(tb_path)
        report = LayoutGenerator(self.library, pipeline=self.pipeline).generate(
            spec,
            route_column=request.route_columns,
            export=output_dir is not None,
            output_dir=str(output_dir) if output_dir is not None else None,
        )
        if report.gds_path:
            files["gds"] = report.gds_path
        if report.def_path:
            files["def"] = report.def_path
        if request.lef:
            from repro.layout.lef_export import write_macro_lef, write_tech_lef

            tech_lef = output_dir / f"{self.technology.name}_tech.lef"
            macro_lef = output_dir / f"{report.layout.name}.lef"
            write_tech_lef(self.technology, tech_lef)
            write_macro_lef(report.layout, self.technology, macro_lef)
            files["tech_lef"] = str(tech_lef)
            files["macro_lef"] = str(macro_lef)
        physical_stats = self.pipeline.stats.since(physical_baseline).as_dict()
        payload = {
            "report": report.as_dict(),
            "files": files,
            "physical_stats": physical_stats,
        }
        result = self._finish(
            request.kind, start, baseline, payload,
            artifacts={"report": report, "netlist": netlist},
        )
        self._merge_physical_stats(result, physical_stats)
        return result

    def validate_snr(self, request: ValidateSnrRequest) -> ApiResult:
        """Monte-Carlo validation of the analytic SNR model."""
        request.validate()
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        from repro.sim.montecarlo import MonteCarloSnr

        rows: List[dict] = []
        warnings: List[str] = []
        for bits in request.adc_bits:
            spec = ACIMDesignSpec(
                request.height, 8, request.local_array_size, bits
            )
            if not spec.is_feasible():
                warnings.append(
                    f"skipping infeasible point B_ADC={bits} (H/L too small)"
                )
                continue
            measurement = MonteCarloSnr(spec, seed=request.seed).run(
                trials=request.trials
            )
            n = spec.local_arrays_per_column
            rows.append({
                "B_ADC": bits,
                "N": n,
                "analytic_dB": round(
                    self.estimator.snr_model.design_snr_db(bits, n), 2
                ),
                "measured_dB": round(measurement.snr_db, 2),
            })
        return self._finish(
            request.kind, start, baseline,
            payload={"trials": request.trials, "points": rows},
            warnings=warnings,
        )

    def library_report(self, request: LibraryRequest) -> ApiResult:
        """Consistency check (and optional report) of the cell library."""
        request.validate()
        start = time.perf_counter()
        baseline = self.engine.stats.snapshot()
        library = self.library
        problems = library.check_consistency()
        payload = {
            "technology": self.technology.name,
            "cells": len(library.cell_names),
            "consistent": not problems,
            "problems": list(problems),
        }
        if request.report:
            payload["report"] = library.report()
        if request.macros:
            payload["macros"] = self._macro_listing(
                stage=request.stage, kind=request.macro_kind
            )
        return self._finish(
            request.kind, start, baseline, payload,
            status="ok" if not problems else "failed",
            artifacts={"library": library},
        )

    def _macro_listing(
        self, stage: Optional[str] = None, kind: Optional[str] = None
    ) -> List[dict]:
        """Solved macros of this session plus the persisted artifact cache.

        In-memory records (solved, derived or hydrated during this
        session) are listed with their full summary — the ``source``
        column distinguishes ``built`` / ``memory`` / ``store`` /
        ``derived`` servings; store artifacts not yet touched by this
        session appear as ``source="store"`` rows decoded from their
        keys, so ``repro library macros --store ...`` shows the whole
        warm-start inventory without deserializing every layout.
        ``stage`` filters the persisted inventory by store stage (solved
        macros live under ``"macro"``); ``kind`` filters by macro kind.
        """
        rows: List[dict] = []
        if stage is None or stage == MACRO_STAGE:
            rows = [
                record.summary()
                for record in self.pipeline.macro_library.macros()
            ]
        listed = {row["digest"] for row in rows}
        if self.store is not None:
            for artifact in self.store.list_artifacts(stage=stage or MACRO_STAGE):
                digest = artifact["digest"][:12]
                if digest in listed:
                    continue
                key = artifact["key"]
                # Macro artifacts are stored under a [kind, params] key.
                artifact_kind = "?"
                if isinstance(key, list) and key and isinstance(key[0], str):
                    artifact_kind = key[0]
                rows.append({
                    "kind": artifact_kind,
                    "cell": "",
                    "digest": digest,
                    "pins": "",
                    "routed_nets": "",
                    "failed_nets": "",
                    "area_dbu2": "",
                    "source": "store",
                })
        if kind is not None:
            rows = [row for row in rows if row["kind"] == kind]
        return rows

    #: kind -> bound handler; the single dispatch table behind submit().
    _HANDLERS: Dict[str, Callable[["Session", ApiRequest], ApiResult]] = {
        EstimateRequest.kind: estimate,
        ExploreRequest.kind: explore,
        CampaignRequest.kind: campaign,
        FlowRequest.kind: flow,
        QueryRequest.kind: query,
        LayoutRequest.kind: layout,
        ValidateSnrRequest.kind: validate_snr,
        LibraryRequest.kind: library_report,
    }

    @staticmethod
    def _criteria_of(request, name: str = "api") -> Optional[DistillationCriteria]:
        """Distillation criteria from a request's bound fields (or None)."""
        bounds = {
            "min_snr_db": request.min_snr_db,
            "min_tops": request.min_tops,
            "min_tops_per_watt": request.min_tops_per_watt,
            "max_area_f2_per_bit": request.max_area_f2_per_bit,
        }
        if all(value is None for value in bounds.values()):
            return None
        return DistillationCriteria(name=name, **bounds)
