"""The public, typed, JSON-serializable API of the EasyACIM reproduction.

One entry point for everything the library does:

* :class:`Session` — owns the shared evaluation engine, the optional
  persistent result store and the model/technology configuration, and
  executes requests; build it once via :meth:`Session.from_config`.
* Request objects (:class:`EstimateRequest`, :class:`ExploreRequest`,
  :class:`CampaignRequest`, :class:`FlowRequest`, :class:`QueryRequest`,
  :class:`LayoutRequest`, :class:`ValidateSnrRequest`,
  :class:`LibraryRequest`) — frozen, validated, and round-trippable
  through ``to_dict``/``from_dict`` so they can cross a wire.
* :class:`ApiResult` — the typed result envelope (``status``, JSON
  ``payload``, ``warnings``, ``engine_stats``) every call returns.

The CLI is a thin adapter over this layer.  The legacy front doors
(``DesignSpaceExplorer``, ``EasyACIMFlow``, ``CampaignManager``) were
removed in 1.2.0 after their one-release deprecation window — see the
migration table in ``docs/api.md``.
"""

from repro.api.requests import (
    REQUEST_TYPES,
    ApiRequest,
    CampaignRequest,
    EstimateRequest,
    ExploreRequest,
    FlowRequest,
    LayoutRequest,
    LibraryRequest,
    QueryRequest,
    ValidateSnrRequest,
    request_from_dict,
)
from repro.api.results import ApiResult
from repro.api.session import TECHNOLOGIES, Session, SessionConfig

__all__ = [
    "ApiRequest",
    "ApiResult",
    "CampaignRequest",
    "EstimateRequest",
    "ExploreRequest",
    "FlowRequest",
    "LayoutRequest",
    "LibraryRequest",
    "QueryRequest",
    "REQUEST_TYPES",
    "Session",
    "SessionConfig",
    "TECHNOLOGIES",
    "ValidateSnrRequest",
    "request_from_dict",
]
