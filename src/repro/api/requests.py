"""Typed, JSON-serializable request objects of the public API.

Every workflow the library supports is described by one frozen request
dataclass: what to run, on which design space, with which knobs.  Requests
are plain data — construct them in Python, ship them as JSON (``to_dict``
/ ``from_dict`` round-trip exactly), queue them, log them — and every one
of them is executed by :class:`repro.api.Session`, the single entry point
the CLI, the tests and any future service share.

Validation raises the structured :mod:`repro.errors` exceptions (each with
a machine-readable ``code``): the request *envelope* (unknown kind,
unexpected field, wrong type) raises :class:`~repro.errors.RequestError`,
while domain violations inside a structurally valid request raise the same
domain exception the underlying layer would — an infeasible spec is a
:class:`~repro.errors.SpecificationError` whether it reaches the model
through an :class:`EstimateRequest` or directly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, Optional, Tuple, Type

from repro.arch.spec import ACIMDesignSpec
from repro.dse.nsga2 import NSGA2Config
from repro.flow.controller import REUSE_MODES
from repro.errors import (
    FlowError,
    OptimizationError,
    RequestError,
    SimulationError,
    StoreError,
)
from repro.physical.artifacts import PIPELINE_STAGES
from repro.store.result_store import RANK_METRICS

#: kind -> request class; populated by :func:`_register`.
REQUEST_TYPES: Dict[str, Type["ApiRequest"]] = {}


def _register(cls: Type["ApiRequest"]) -> Type["ApiRequest"]:
    """Class decorator adding a request type to the ``kind`` registry."""
    if not cls.kind or cls.kind in REQUEST_TYPES:
        raise RequestError(f"duplicate or empty request kind {cls.kind!r}")
    REQUEST_TYPES[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class ApiRequest:
    """Base machinery shared by every request type.

    Subclasses are frozen dataclasses with a :attr:`kind` class attribute;
    the base provides the dict round-trip and the envelope validation so
    the field lists below stay declarative.
    """

    #: Stable wire name of the request type (``"estimate"``, ...).
    kind: ClassVar[str] = ""
    #: Fields deserialized from JSON lists back into tuples.
    _tuple_fields: ClassVar[Tuple[str, ...]] = ()

    def validate(self) -> "ApiRequest":
        """Raise a structured :mod:`repro.errors` exception when invalid.

        Returns ``self`` so construction sites can chain
        ``Request(...).validate()``.
        """
        return self

    def to_dict(self) -> dict:
        """Serializable dictionary including the ``kind`` discriminator.

        Tuples become lists (JSON has no tuple), so
        ``from_dict(to_dict())`` reconstructs an equal request.
        """
        data = {"kind": self.kind}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ApiRequest":
        """Build (and validate) a request from a plain dictionary.

        The ``kind`` entry is optional when calling on a concrete class but
        must match it when present; unknown fields raise
        :class:`~repro.errors.RequestError` instead of being dropped, so a
        typo in a JSON request fails loudly.
        """
        if not isinstance(data, dict):
            raise RequestError(
                f"request must be a dict, got {type(data).__name__}"
            )
        data = dict(data)
        kind = data.pop("kind", cls.kind)
        if kind != cls.kind:
            raise RequestError(
                f"kind {kind!r} does not match {cls.__name__} "
                f"(expected {cls.kind!r})",
                field="kind",
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise RequestError(
                f"unknown field(s) {', '.join(unknown)} for request kind "
                f"{cls.kind!r} (known: {', '.join(sorted(known))})",
                field=unknown[0],
            )
        for name in cls._tuple_fields:
            if name in data and isinstance(data[name], list):
                data[name] = tuple(data[name])
        try:
            request = cls(**data)
        except TypeError as error:
            raise RequestError(
                f"cannot build {cls.kind!r} request: {error}"
            )
        request.validate()
        return request


def request_from_dict(data: dict) -> ApiRequest:
    """Dispatch a dictionary to its request class by ``kind``.

    The inverse of ``request.to_dict()`` for any registered type — the
    deserialization entry point for JSON job queues and the CLI.
    """
    if not isinstance(data, dict):
        raise RequestError(
            f"request must be a dict, got {type(data).__name__}"
        )
    kind = data.get("kind")
    if kind is None:
        raise RequestError(
            "request is missing the 'kind' discriminator; "
            f"allowed kinds: {', '.join(sorted(REQUEST_TYPES))}",
            field="kind",
        )
    if kind not in REQUEST_TYPES:
        raise RequestError(
            f"unknown request kind {kind!r}; "
            f"allowed kinds: {', '.join(sorted(REQUEST_TYPES))}",
            field="kind",
        )
    return REQUEST_TYPES[kind].from_dict(data)


# ---------------------------------------------------------------------------
# Shared validation helpers
# ---------------------------------------------------------------------------


def _require_int(name: str, value, minimum: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise RequestError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise RequestError(f"{name} must be at least {minimum}, got {value}")


def _require_optional_int(name: str, value, minimum: int) -> None:
    if value is not None:
        _require_int(name, value, minimum)


def _spec_of(request) -> ACIMDesignSpec:
    """The validated design spec of a single-point request."""
    for name in ("height", "width", "local_array_size", "adc_bits"):
        _require_int(name, getattr(request, name), 1)
    return ACIMDesignSpec(
        request.height,
        request.width,
        request.local_array_size,
        request.adc_bits,
    ).validate()


def _validate_nsga2(request) -> None:
    """Shared checks of the optimiser knobs carried by a request.

    Delegates range checks to :class:`NSGA2Config` itself (raising its
    :class:`~repro.errors.OptimizationError`), so the request layer can
    never accept a configuration the optimiser would reject.
    """
    _require_int("array_size", request.array_size, 16)
    _require_optional_int("workers", getattr(request, "workers", None), 1)
    NSGA2Config(
        population_size=request.population,
        generations=request.generations,
        seed=request.seed,
    )


def _validate_surrogate(request) -> None:
    """Shared checks of the surrogate-screening knobs."""
    if request.surrogate not in ("off", "screen", "refine"):
        raise RequestError(
            f"unknown surrogate mode {request.surrogate!r}; "
            "expected one of ['off', 'refine', 'screen']"
        )
    fraction = request.screen_fraction
    if not isinstance(fraction, (int, float)) or isinstance(fraction, bool):
        raise RequestError(
            f"screen_fraction must be a number, got {fraction!r}"
        )
    if not 0.0 < float(fraction) <= 1.0:
        raise RequestError(
            f"screen_fraction must be in (0, 1], got {fraction!r}"
        )


_CRITERIA_FIELDS = (
    "min_snr_db",
    "min_tops",
    "min_tops_per_watt",
    "max_area_f2_per_bit",
)


def _has_criteria(request) -> bool:
    return any(
        getattr(request, name) is not None for name in _CRITERIA_FIELDS
    )


# ---------------------------------------------------------------------------
# The request catalogue
# ---------------------------------------------------------------------------


@_register
@dataclass(frozen=True)
class EstimateRequest(ApiRequest):
    """Evaluate the estimation model for one design point.

    Attributes:
        height / width / local_array_size / adc_bits: the design spec.
        adc_sweep: additionally sweep every feasible B_ADC for this
            geometry, evaluated as one engine batch.
    """

    kind: ClassVar[str] = "estimate"

    height: int = 128
    width: int = 128
    local_array_size: int = 8
    adc_bits: int = 3
    adc_sweep: bool = False

    def validate(self) -> "EstimateRequest":
        self.spec()
        return self

    def spec(self) -> ACIMDesignSpec:
        """The validated :class:`ACIMDesignSpec` this request describes."""
        return _spec_of(self)


@_register
@dataclass(frozen=True)
class ExploreRequest(ApiRequest):
    """Design-space exploration of one array size.

    Attributes:
        array_size: user-defined H * W in bit cells.
        method: ``nsga2`` (the paper's MOGA), ``exhaustive`` (brute-force
            true frontier) or ``sensitivity`` (Pareto-frontier stability
            under model-constant perturbation).
        population / generations / seed: NSGA-II budget (``nsga2`` only).
        local_array_sizes / max_adc_bits / min_height / max_height: the
            candidate design space.
        min_snr_db / min_tops / min_tops_per_watt / max_area_f2_per_bit:
            optional user-distillation bounds applied to the frontier.
        sensitivity_parameters: constants to perturb (``sensitivity``
            only; None keeps the analyzer's default set).
        relative_change: perturbation magnitude (``sensitivity`` only).
        surrogate: evaluation mode (``nsga2`` only): ``off`` (exact,
            bit-identical to earlier releases), ``screen`` (surrogate
            pre-filters offspring) or ``refine`` (screening plus a
            store-warmed start; needs the session's store).
        screen_fraction: fraction of feasible offspring sent to the exact
            engine per generation in the surrogate modes.
    """

    kind: ClassVar[str] = "explore"
    _tuple_fields: ClassVar[Tuple[str, ...]] = (
        "local_array_sizes",
        "sensitivity_parameters",
    )

    array_size: int = 16 * 1024
    method: str = "nsga2"
    population: int = 80
    generations: int = 40
    seed: int = 1
    local_array_sizes: Tuple[int, ...] = (2, 4, 8, 16, 32)
    max_adc_bits: int = 8
    min_height: int = 2
    max_height: Optional[int] = None
    min_snr_db: Optional[float] = None
    min_tops: Optional[float] = None
    min_tops_per_watt: Optional[float] = None
    max_area_f2_per_bit: Optional[float] = None
    sensitivity_parameters: Optional[Tuple[str, ...]] = None
    relative_change: float = 0.2
    surrogate: str = "off"
    screen_fraction: float = 0.25

    METHODS: ClassVar[Tuple[str, ...]] = ("nsga2", "exhaustive", "sensitivity")
    SURROGATE_MODES: ClassVar[Tuple[str, ...]] = ("off", "screen", "refine")

    def validate(self) -> "ExploreRequest":
        if self.method not in self.METHODS:
            raise RequestError(
                f"unknown explore method {self.method!r}; "
                f"expected one of {sorted(self.METHODS)}"
            )
        _validate_surrogate(self)
        if self.surrogate != "off" and self.method != "nsga2":
            raise RequestError(
                "surrogate screening only applies to the 'nsga2' method"
            )
        _validate_nsga2(self)
        _require_int("max_adc_bits", self.max_adc_bits, 1)
        _require_int("min_height", self.min_height, 1)
        _require_optional_int("max_height", self.max_height, 1)
        if not self.local_array_sizes:
            raise OptimizationError(
                "local_array_sizes must name at least one candidate L"
            )
        for size in self.local_array_sizes:
            _require_int("local_array_sizes entry", size, 1)
        if self.method == "sensitivity" and self.relative_change == 0.0:
            raise OptimizationError(
                "sensitivity relative_change must be non-zero"
            )
        return self


@_register
@dataclass(frozen=True)
class CampaignRequest(ApiRequest):
    """Start or resume a named, checkpointed, resumable campaign.

    Attributes:
        name: unique campaign name (the resume handle).
        action: ``run`` (new campaign) or ``resume`` (continue a killed
            one from its last committed checkpoint).
        array_size / population / generations / seed: the exploration
            budget (``run`` only; ``resume`` replays the stored config).
        checkpoint_every: commit a snapshot every N generations.
        stop_after: stop (checkpointed, resumable) after N generations in
            this call — the programmatic equivalent of killing the process.
        shards: pre-warm the store by evaluating the feasible design grid
            across N worker processes before optimising (``run`` only;
            needs a file-backed store).  Results are bit-identical to the
            unsharded run.
        surrogate: evaluation mode (``run`` only; ``resume`` replays the
            stored mode): ``off``, ``screen`` or ``refine`` — see
            :class:`ExploreRequest`.
        screen_fraction: fraction of feasible offspring sent to the exact
            engine per generation in the surrogate modes.
    """

    kind: ClassVar[str] = "campaign"

    name: str = ""
    action: str = "run"
    array_size: int = 16 * 1024
    population: int = 80
    generations: int = 40
    seed: int = 1
    checkpoint_every: int = 1
    stop_after: Optional[int] = None
    shards: Optional[int] = None
    surrogate: str = "off"
    screen_fraction: float = 0.25

    ACTIONS: ClassVar[Tuple[str, ...]] = ("run", "resume")
    SURROGATE_MODES: ClassVar[Tuple[str, ...]] = ("off", "screen", "refine")

    def validate(self) -> "CampaignRequest":
        if not self.name or not isinstance(self.name, str):
            raise RequestError("campaign name must be a non-empty string")
        if self.action not in self.ACTIONS:
            raise RequestError(
                f"unknown campaign action {self.action!r}; "
                f"expected one of {sorted(self.ACTIONS)}"
            )
        _validate_nsga2(self)
        if self.checkpoint_every < 1:
            raise StoreError("checkpoint_every must be at least 1")
        _require_optional_int("stop_after", self.stop_after, 1)
        _require_optional_int("shards", self.shards, 1)
        if self.shards is not None and self.action != "run":
            raise RequestError(
                "shards only applies to 'run' (a resumed campaign's grid "
                "rows are already in the store)"
            )
        _validate_surrogate(self)
        if self.surrogate != "off" and self.action != "run":
            raise RequestError(
                "surrogate only applies to 'run' (a resumed campaign "
                "replays its stored evaluation mode)"
            )
        return self


@_register
@dataclass(frozen=True)
class FlowRequest(ApiRequest):
    """The end-to-end EasyACIM flow: explore, distill, netlist, layout.

    Attributes:
        array_size / population / generations / seed: exploration budget.
        min_snr_db / min_tops / min_tops_per_watt / max_area_f2_per_bit:
            optional user-distillation bounds (paper Figure 4, stage 3).
        max_layouts: cap on how many distilled solutions get full layouts.
        generate_netlists / generate_layouts: stage toggles.
        route_columns: run the maze router inside local arrays/columns.
        output_dir: where to export GDS/DEF when layouts are generated.
        campaign_name: record the run under this name in the session's
            store (None: ``flow-<array_size>`` when a store is attached).
        reuse: ``"auto"`` serves repeated physical work from the
            session's macro/artifact cache (``docs/physical.md``);
            ``"off"`` solves every design flat from scratch (the
            regression baseline).
    """

    kind: ClassVar[str] = "flow"

    array_size: int = 1024
    population: int = 40
    generations: int = 20
    seed: int = 1
    min_snr_db: Optional[float] = None
    min_tops: Optional[float] = None
    min_tops_per_watt: Optional[float] = None
    max_area_f2_per_bit: Optional[float] = None
    max_layouts: int = 3
    generate_netlists: bool = True
    generate_layouts: bool = True
    route_columns: bool = False
    output_dir: Optional[str] = None
    campaign_name: Optional[str] = None
    reuse: str = "auto"

    #: Shared with the flow controller, so request-level and core-level
    #: validation can never drift apart.
    REUSE_MODES: ClassVar[Tuple[str, ...]] = REUSE_MODES

    def validate(self) -> "FlowRequest":
        if not isinstance(self.array_size, int) or self.array_size < 16:
            raise FlowError("array size must be at least 16 bit cells")
        _validate_nsga2(self)
        _require_int("max_layouts", self.max_layouts, 0)
        if self.reuse not in self.REUSE_MODES:
            raise FlowError(
                f"unknown reuse mode {self.reuse!r}; "
                f"expected one of {sorted(self.REUSE_MODES)}"
            )
        return self


@_register
@dataclass(frozen=True)
class QueryRequest(ApiRequest):
    """Query the session's persistent result store.

    Attributes:
        what: ``designs`` (ranked evaluated design points across every
            campaign that fed the store) or ``campaigns`` (the campaign
            catalogue plus store occupancy).
        min_snr_db / min_tops / min_tops_per_watt / max_area_f2_per_bit:
            optional distillation bounds (``designs`` only).
        rank_by: ranking metric (see ``repro.store.RANK_METRICS``).
        limit: page size — truncate the ranked list to at most this many
            entries (``designs`` only; None returns everything).
        offset: skip this many ranked entries before the page starts
            (``designs`` only); with ``limit`` this pages through large
            stores, and the payload's ``total`` reports the full match
            count so clients know when they are done.
        pareto_only: keep only store-wide non-dominated points.
    """

    kind: ClassVar[str] = "query"

    what: str = "designs"
    min_snr_db: Optional[float] = None
    min_tops: Optional[float] = None
    min_tops_per_watt: Optional[float] = None
    max_area_f2_per_bit: Optional[float] = None
    rank_by: str = "tops_per_watt"
    limit: Optional[int] = None
    offset: int = 0
    pareto_only: bool = True

    TARGETS: ClassVar[Tuple[str, ...]] = ("designs", "campaigns")

    def validate(self) -> "QueryRequest":
        if self.what not in self.TARGETS:
            raise RequestError(
                f"unknown query target {self.what!r}; "
                f"expected one of {sorted(self.TARGETS)}"
            )
        if self.rank_by not in RANK_METRICS:
            raise StoreError(
                f"unknown rank metric {self.rank_by!r}; "
                f"expected one of {sorted(RANK_METRICS)}"
            )
        _require_optional_int("limit", self.limit, 0)
        _require_int("offset", self.offset, 0)
        return self


@_register
@dataclass(frozen=True)
class LayoutRequest(ApiRequest):
    """Generate netlist, layout and export files for one design point.

    Attributes:
        height / width / local_array_size / adc_bits: the design spec.
        route_columns: run the maze router (False: floorplan only).
        output_dir: export directory for GDS/DEF (and the optional SPICE /
            testbench / LEF views); None keeps everything in memory.
        spice / testbench / lef: additional views to write (need
            ``output_dir``).
    """

    kind: ClassVar[str] = "layout"

    height: int = 16
    width: int = 4
    local_array_size: int = 4
    adc_bits: int = 2
    route_columns: bool = True
    output_dir: Optional[str] = None
    spice: bool = False
    testbench: bool = False
    lef: bool = False

    def validate(self) -> "LayoutRequest":
        self.spec()
        if self.output_dir is None and (self.spice or self.testbench or self.lef):
            raise RequestError(
                "spice/testbench/lef views require an output_dir"
            )
        return self

    def spec(self) -> ACIMDesignSpec:
        """The validated :class:`ACIMDesignSpec` this request describes."""
        return _spec_of(self)


@_register
@dataclass(frozen=True)
class ValidateSnrRequest(ApiRequest):
    """Monte-Carlo validation of the analytic SNR model.

    Attributes:
        adc_bits: ADC precisions to validate (infeasible ones are skipped
            with a warning in the result envelope).
        height / local_array_size: column geometry of the validation specs.
        trials: Monte-Carlo trials per precision.
        seed: simulation seed.
    """

    kind: ClassVar[str] = "validate-snr"
    _tuple_fields: ClassVar[Tuple[str, ...]] = ("adc_bits",)

    adc_bits: Tuple[int, ...] = (3, 4, 5)
    height: int = 128
    local_array_size: int = 4
    trials: int = 800
    seed: int = 7

    def validate(self) -> "ValidateSnrRequest":
        if not self.adc_bits:
            raise SimulationError("adc_bits must name at least one precision")
        for bits in self.adc_bits:
            _require_int("adc_bits entry", bits, 1)
        _require_int("height", self.height, 1)
        _require_int("local_array_size", self.local_array_size, 1)
        _require_int("trials", self.trials, 1)
        return self


@_register
@dataclass(frozen=True)
class LibraryRequest(ApiRequest):
    """Inspect the session's customized cell library.

    Attributes:
        report: include the per-cell summary text in the payload.
        macros: also list the solved macros of the session's physical
            pipeline and, when a store is attached, the persisted macro
            artifact cache (``repro library macros``).
        stage: only list artifacts persisted under this store stage
            (``"macro"`` for solved macros; pipeline stage names for any
            future per-stage artifacts); ``None`` lists everything.
        macro_kind: only list macros of this kind (``"local_array"``,
            ``"column"``, ``"acim_macro"``); ``None`` lists everything.
    """

    kind: ClassVar[str] = "library"

    #: Store stages the macro listing understands.
    _STAGES: ClassVar[Tuple[str, ...]] = ("macro",) + PIPELINE_STAGES

    report: bool = False
    macros: bool = False
    stage: Optional[str] = None
    macro_kind: Optional[str] = None

    def validate(self) -> "LibraryRequest":
        if self.stage is not None and self.stage not in self._STAGES:
            raise RequestError(
                f"stage must be one of {sorted(self._STAGES)}, "
                f"got {self.stage!r}"
            )
        if self.macro_kind is not None and not isinstance(
            self.macro_kind, str
        ):
            raise RequestError(
                f"macro_kind must be a string, got {self.macro_kind!r}"
            )
        return self
