"""The typed result envelope every :class:`repro.api.Session` call returns.

Callers never touch internal tuples: each workflow packs its outcome into
an :class:`ApiResult` whose ``payload`` is plain JSON-serializable data
(dicts, lists, numbers, strings), with the engine statistics and any
non-fatal warnings alongside.  Rich in-process objects (evaluated designs,
layout reports, the full :class:`~repro.flow.controller.FlowResult`) ride
in :attr:`ApiResult.artifacts`, which is deliberately excluded from the
dict round-trip — the serialized form is exactly what a remote consumer
would see.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import RequestError

#: Result statuses a session can report.  ``error`` never appears on a
#: result returned from :meth:`Session.submit` — failures raise — but is
#: reserved for transports that must serialize an exception instead.
STATUSES = ("ok", "interrupted", "failed", "error")


@dataclass
class ApiResult:
    """Outcome of one API request.

    Attributes:
        kind: the request kind that produced this result.
        status: ``ok``, ``interrupted`` (checkpointed campaign stopped
            early, resumable) or ``failed`` (the workflow ran but reports
            an unhealthy outcome, e.g. library consistency problems).
        payload: JSON-serializable result data (shape documented per
            request type in ``docs/api.md``).
        warnings: non-fatal notes (skipped infeasible points, ...).
        engine_stats: evaluation-engine statistics of this call.
        runtime_seconds: wall-clock of this call (monotonic clock).
        metrics: per-request delta of the session metrics registry
            (``repro.obs`` names -> values; histograms as documents).
            Superset of ``engine_stats`` — that view is kept for
            compatibility, this one carries every instrumented subsystem.
        trace_id: id of the active trace during this call (None when
            tracing was disabled).
        artifacts: rich in-process objects backing the payload; excluded
            from :meth:`to_dict` and from equality.
    """

    kind: str
    status: str = "ok"
    payload: Dict[str, Any] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    engine_stats: Dict[str, Any] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    metrics: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    artifacts: Dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        """True when the workflow completed healthily."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """Serializable dictionary (artifacts excluded)."""
        return {
            "kind": self.kind,
            "status": self.status,
            "payload": self.payload,
            "warnings": list(self.warnings),
            "engine_stats": dict(self.engine_stats),
            "runtime_seconds": self.runtime_seconds,
            "metrics": dict(self.metrics),
            "trace_id": self.trace_id,
        }

    def to_json(self, indent: int = 2) -> str:
        """The envelope as a JSON document (used by the CLI ``--json``)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict) -> "ApiResult":
        """Rebuild an envelope from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise RequestError(
                f"result must be a dict, got {type(data).__name__}"
            )
        data = dict(data)
        unknown = sorted(
            set(data)
            - {"kind", "status", "payload", "warnings", "engine_stats",
               "runtime_seconds", "metrics", "trace_id"}
        )
        if unknown:
            raise RequestError(
                f"unknown result field(s) {', '.join(unknown)}"
            )
        try:
            result = cls(**data)
        except TypeError as error:
            raise RequestError(f"cannot build ApiResult: {error}")
        if result.status not in STATUSES:
            raise RequestError(
                f"unknown result status {result.status!r}; "
                f"expected one of {sorted(STATUSES)}"
            )
        return result
