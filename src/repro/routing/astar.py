"""A* maze search on the 3-D routing grid.

The search connects a set of source nodes to a set of target nodes using
the neighbour/cost structure of :class:`repro.layout.grid.RoutingGrid`
(preferred-direction moves, optional off-direction moves at a penalty, via
moves between adjacent layers).  Multi-source / multi-target search is the
primitive the net router builds Steiner-ish multi-pin routes from: each new
pin is connected to the whole already-routed tree.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.layout.grid import GridNode, RoutingGrid


@dataclass
class SearchResult:
    """Outcome of one A* search.

    Attributes:
        path: node sequence from a source to a target (inclusive), empty when
            no path was found.
        cost: total path cost.
        expanded: number of nodes expanded (a routing-effort metric).
    """

    path: List[GridNode] = field(default_factory=list)
    cost: float = 0.0
    expanded: int = 0

    @property
    def found(self) -> bool:
        """True when a path was found."""
        return bool(self.path)


class AStarSearch:
    """A* search over a routing grid."""

    def __init__(self, grid: RoutingGrid, max_expansions: int = 400_000) -> None:
        if max_expansions <= 0:
            raise RoutingError("max_expansions must be positive")
        self.grid = grid
        self.max_expansions = max_expansions

    def search(
        self,
        sources: Iterable[GridNode],
        targets: Iterable[GridNode],
    ) -> SearchResult:
        """Find the cheapest path from any source to any target."""
        source_list = [node for node in sources if self.grid.in_bounds(node)]
        target_set: Set[GridNode] = {
            node for node in targets if self.grid.in_bounds(node)
        }
        if not source_list or not target_set:
            return SearchResult()

        open_heap: List[Tuple[float, int, GridNode]] = []
        best_cost: Dict[GridNode, float] = {}
        parent: Dict[GridNode, Optional[GridNode]] = {}
        counter = 0
        for node in source_list:
            heapq.heappush(open_heap, (self._heuristic(node, target_set), counter, node))
            counter += 1
            best_cost[node] = 0.0
            parent[node] = None

        expanded = 0
        while open_heap:
            _priority, _tie, node = heapq.heappop(open_heap)
            if node in target_set:
                return SearchResult(
                    path=self._reconstruct(parent, node),
                    cost=best_cost[node],
                    expanded=expanded,
                )
            expanded += 1
            if expanded > self.max_expansions:
                break
            node_cost = best_cost[node]
            for neighbor, step_cost in self.grid.neighbors(node):
                candidate = node_cost + step_cost
                if candidate < best_cost.get(neighbor, float("inf")):
                    best_cost[neighbor] = candidate
                    parent[neighbor] = node
                    priority = candidate + self._heuristic(neighbor, target_set)
                    heapq.heappush(open_heap, (priority, counter, neighbor))
                    counter += 1
        return SearchResult(expanded=expanded)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _heuristic(node: GridNode, targets: Set[GridNode]) -> float:
        """Admissible heuristic: minimum Manhattan distance to any target."""
        return min(
            abs(node.x - t.x) + abs(node.y - t.y) + abs(node.layer - t.layer)
            for t in targets
        )

    @staticmethod
    def _reconstruct(
        parent: Dict[GridNode, Optional[GridNode]], end: GridNode
    ) -> List[GridNode]:
        path = [end]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        path.reverse()
        return path
