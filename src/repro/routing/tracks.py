"""Pre-defined routing tracks for power and critical control nets.

The paper attributes its fast layout generation partly to "pre-defined
routing tracks for critical nets including power nets and SAR logic control
nets" (section 4).  A :class:`TrackPlan` captures such tracks: straight
wires at fixed coordinates spanning the macro, realised directly as layout
shapes without going through the maze router, and registered as obstacles
so the signal router works around them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import RoutingError
from repro.layout.geometry import Rect
from repro.layout.grid import RoutingGrid
from repro.layout.layout import LayoutCell
from repro.technology.tech import Technology


@dataclass(frozen=True)
class PredefinedTrack:
    """One pre-defined straight track.

    Attributes:
        net: net name the track carries (VDD, VSS, VCM, SAR control, ...).
        layer: routing layer name.
        orientation: ``"horizontal"`` or ``"vertical"``.
        position: y coordinate (horizontal) or x coordinate (vertical) of the
            track centerline in dbu.
        width: wire width in dbu.
    """

    net: str
    layer: str
    orientation: str
    position: int
    width: int

    def __post_init__(self) -> None:
        if self.orientation not in ("horizontal", "vertical"):
            raise RoutingError(f"unknown track orientation {self.orientation!r}")
        if self.width <= 0:
            raise RoutingError("track width must be positive")

    def to_rect(self, extent: Rect) -> Rect:
        """The track's wire rectangle spanning ``extent``."""
        half = self.width // 2
        if self.orientation == "horizontal":
            return Rect(extent.x_lo, self.position - half,
                        extent.x_hi, self.position + half)
        return Rect(self.position - half, extent.y_lo,
                    self.position + half, extent.y_hi)


@dataclass
class TrackPlan:
    """A set of pre-defined tracks over a routing extent."""

    extent: Rect
    tracks: List[PredefinedTrack] = field(default_factory=list)

    def add(self, track: PredefinedTrack) -> None:
        """Append a track to the plan."""
        self.tracks.append(track)

    def nets(self) -> List[str]:
        """All net names carried by the plan (in first-appearance order)."""
        names: List[str] = []
        for track in self.tracks:
            if track.net not in names:
                names.append(track.net)
        return names

    def realize(self, cell: LayoutCell) -> List[Rect]:
        """Add every track as a wire shape to ``cell`` and return the rects."""
        rects = []
        for track in self.tracks:
            rect = track.to_rect(self.extent)
            cell.add_shape(track.layer, rect, net=track.net)
            rects.append(rect)
        return rects

    def block(self, grid: RoutingGrid, technology: Technology) -> int:
        """Mark every track as an obstacle on the routing grid.

        Returns the number of grid nodes blocked.
        """
        blocked = 0
        for track in self.tracks:
            layer_index = technology.routing_layer_index(track.layer)
            rect = track.to_rect(self.extent)
            blocked += grid.add_obstacle_rect(layer_index, rect,
                                              margin=track.width // 2)
        return blocked


def power_track_plan(
    extent: Rect,
    technology: Technology,
    layer: str = "M5",
    nets: Sequence[str] = ("VDD", "VSS", "VCM"),
    pitch: Optional[int] = None,
    width: Optional[int] = None,
) -> TrackPlan:
    """Interleaved horizontal power stripes across the macro.

    Stripes for the given nets repeat with the given pitch from the bottom
    to the top of ``extent`` — the standard power-mesh pattern of a memory
    macro, here for VDD / VSS / VCM.
    """
    layer_def = technology.layer(layer)
    stripe_width = width or max(layer_def.default_width * 2, layer_def.min_width)
    stripe_pitch = pitch or max(20 * layer_def.pitch, 4 * stripe_width)
    plan = TrackPlan(extent=extent)
    y = extent.y_lo + stripe_pitch // 2
    index = 0
    while y + stripe_width // 2 <= extent.y_hi:
        net = nets[index % len(nets)]
        plan.add(PredefinedTrack(
            net=net, layer=layer, orientation="horizontal",
            position=y, width=stripe_width,
        ))
        y += stripe_pitch
        index += 1
    return plan


def sar_control_track_plan(
    extent: Rect,
    technology: Technology,
    adc_bits: int,
    layer: str = "M3",
    start_y: Optional[int] = None,
    pitch: Optional[int] = None,
) -> TrackPlan:
    """Horizontal tracks for the SAR group-control nets P<i> / N<i>.

    These nets span every column, so they get dedicated straight tracks in
    the control region of the macro instead of maze-routed wires.
    """
    if adc_bits < 1:
        raise RoutingError("adc_bits must be at least 1")
    layer_def = technology.layer(layer)
    track_pitch = pitch or 3 * layer_def.pitch
    width = layer_def.default_width or layer_def.min_width
    y = start_y if start_y is not None else extent.y_lo + track_pitch
    plan = TrackPlan(extent=extent)
    for bit in range(adc_bits):
        for prefix in ("P", "N"):
            plan.add(PredefinedTrack(
                net=f"{prefix}{bit}", layer=layer, orientation="horizontal",
                position=y, width=width,
            ))
            y += track_pitch
    return plan
