"""Hierarchical inter-connection routing (paper section 3.3, Figure 7).

At each hierarchy level the routing *inside* "Std" cells and finished
subcircuits is kept; only the interconnections between the level's direct
children (and the level's own pre-defined tracks) are routed.  The
:class:`HierarchicalRouter`:

1. builds a routing grid over the parent cell's extent,
2. blocks the lowest routing layer under every child instance (over-cell
   routing is only allowed on the higher layers, as in a real macro),
3. blocks any pre-defined tracks,
4. expresses each :class:`LogicalNet` (net name -> child instance pins) as a
   :class:`~repro.routing.router.RoutingRequest` using the children's pin
   access points,
5. runs the :class:`~repro.routing.router.GridRouter` and adds the resulting
   wires and via markers as shapes of the parent cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.layout.geometry import Point, Rect
from repro.layout.grid import RoutingGrid
from repro.layout.layout import LayoutCell
from repro.routing.router import GridRouter, NetPlan, RoutingRequest, RoutingResult
from repro.routing.tracks import TrackPlan
from repro.technology.tech import Technology


@dataclass(frozen=True)
class CellRoutePlans:
    """Replayable routing record of one hierarchy level.

    Plans are tied to the grid geometry they were recorded on: ``origin``
    and ``pitch`` must match the replaying grid for node indices to mean
    the same dbu coordinates.  :meth:`HierarchicalRouter.route_cell`
    silently ignores incompatible plans and falls back to full search.
    """

    origin: Tuple[int, int]
    pitch: int
    nets: Mapping[str, NetPlan] = field(default_factory=dict)

    def compatible_with(self, grid: RoutingGrid) -> bool:
        """True when node indices recorded here are valid on ``grid``."""
        return (self.origin == (grid.region.x_lo, grid.region.y_lo)
                and self.pitch == grid.pitch)


@dataclass(frozen=True)
class LogicalNet:
    """A net expressed on child-instance pins.

    Attributes:
        name: net name.
        terminals: (instance name, pin name) pairs.
        layer: preferred routing layer name for the pin escape.
        critical: forwarded to the router's net ordering.
    """

    name: str
    terminals: Tuple[Tuple[str, str], ...]
    layer: str = "M2"
    critical: bool = False


@dataclass
class HierRoutingReport:
    """Summary of one hierarchical routing pass.

    Attributes:
        result: the underlying grid-routing result.
        grid_nodes: size of the routing grid used.
        blocked_nodes: obstacle nodes (cells + tracks) before routing.
        plans: replayable record of this pass (grid geometry + per-net
            plans), suitable for :meth:`HierarchicalRouter.route_cell`'s
            ``plans`` argument on a neighbouring configuration.
    """

    result: RoutingResult
    grid_nodes: int
    blocked_nodes: int
    plans: Optional[CellRoutePlans] = None


class HierarchicalRouter:
    """Routes the interconnections of one hierarchy level."""

    def __init__(
        self,
        technology: Technology,
        routing_layers: Sequence[str] = ("M2", "M3", "M4"),
        pitch: Optional[int] = None,
        max_expansions: int = 400_000,
    ) -> None:
        self.technology = technology
        if len(routing_layers) < 1:
            raise RoutingError("need at least one routing layer")
        self.routing_layers = [technology.layer(name) for name in routing_layers]
        self.pitch = pitch
        self.max_expansions = max_expansions

    # -- public API --------------------------------------------------------------

    def route_cell(
        self,
        cell: LayoutCell,
        nets: Sequence[LogicalNet],
        track_plan: Optional[TrackPlan] = None,
        margin: int = 2000,
        block_lowest_layer_under_cells: bool = True,
        plans: Optional[CellRoutePlans] = None,
    ) -> HierRoutingReport:
        """Route ``nets`` between the direct children of ``cell``.

        Wire shapes and via markers are added to ``cell``; pre-defined
        tracks from ``track_plan`` are realised first and treated as
        obstacles.  ``plans`` (a prior pass's
        :attr:`HierRoutingReport.plans`) turns this into an *incremental*
        pass: recorded per-net steps are replayed while they stay valid,
        and only nets (or tree-growth steps) the plan does not cover run a
        live maze search.  Plans recorded on an incompatible grid (other
        origin or pitch) are ignored.
        """
        extent = self._extent(cell, margin)
        grid = RoutingGrid(
            region=extent,
            layers=self.routing_layers,
            pitch=self.pitch,
            allow_off_direction=True,
        )
        blocked = 0
        if block_lowest_layer_under_cells:
            for instance in cell.instances:
                bbox = instance.bounding_box()
                if bbox is not None:
                    blocked += grid.add_obstacle_rect(0, bbox, margin=0)
        if track_plan is not None:
            track_plan.realize(cell)
            blocked += track_plan.block(grid, self.technology)

        net_plans: Optional[Mapping[str, NetPlan]] = None
        if plans is not None and plans.compatible_with(grid):
            net_plans = plans.nets
        requests = [self._to_request(cell, net, grid) for net in nets]
        router = GridRouter(grid, self.technology, max_expansions=self.max_expansions)
        result = router.route(requests, plans=net_plans)
        self._emit(cell, result)
        return HierRoutingReport(
            result=result,
            grid_nodes=grid.node_count(),
            blocked_nodes=blocked,
            plans=CellRoutePlans(
                origin=(grid.region.x_lo, grid.region.y_lo),
                pitch=grid.pitch,
                nets={
                    name: route.plan
                    for name, route in result.routes.items()
                    if route.plan is not None
                },
            ),
        )

    # -- helpers ------------------------------------------------------------------

    def _extent(self, cell: LayoutCell, margin: int) -> Rect:
        bbox = cell.boundary or cell.bounding_box()
        if bbox is None:
            raise RoutingError(f"cell {cell.name!r} is empty; nothing to route")
        return bbox.expanded(margin)

    def _layer_index(self, name: str) -> int:
        for index, layer in enumerate(self.routing_layers):
            if layer.name == name:
                return index
        # Fall back to the lowest available routing layer.
        return 0

    def _to_request(
        self, cell: LayoutCell, net: LogicalNet, grid: RoutingGrid
    ) -> RoutingRequest:
        pins: List[Tuple[Point, int]] = []
        for instance_name, pin_name in net.terminals:
            instance = cell.instance(instance_name)
            if not instance.cell.has_pin(pin_name):
                raise RoutingError(
                    f"net {net.name!r}: instance {instance_name!r} "
                    f"({instance.cell.name!r}) has no pin {pin_name!r}"
                )
            point = instance.pin_access(pin_name)
            pin_layer_name = instance.cell.pin(pin_name).layer
            layer_index = self._layer_index(pin_layer_name)
            pins.append((point, layer_index))
            # Make sure the pin's landing node is routable.
            grid.clear_obstacle(grid.point_to_node(point, layer_index))
        if len(pins) < 2:
            raise RoutingError(f"net {net.name!r} has fewer than two terminals")
        return RoutingRequest(net=net.name, pins=tuple(pins), critical=net.critical)

    @staticmethod
    def _emit(cell: LayoutCell, result: RoutingResult) -> None:
        for route in result.routes.values():
            for layer_name, rect in route.wires:
                cell.add_shape(layer_name, rect, net=route.net)
