"""Grid-based routing (paper Figure 3, right; section 3.3).

The router works on the 3-D routing grid of :mod:`repro.layout.grid`:

* :mod:`repro.routing.astar` — A* maze search between node sets,
* :class:`~repro.routing.router.GridRouter` — routes whole nets (multi-pin,
  with net ordering and a rip-up-and-retry pass) and converts node paths to
  wire rectangles and vias,
* :mod:`repro.routing.tracks` — pre-defined routing tracks for power and
  SAR-control nets (the "pre-defined routing tracks for critical nets"
  the paper credits for its fast layout generation),
* :class:`~repro.routing.hier_router.HierarchicalRouter` — the
  template-based hierarchical integration: at each hierarchy level only the
  inter-connection routing between already-finished child cells is done.
"""

from repro.routing.astar import AStarSearch, SearchResult
from repro.routing.tracks import PredefinedTrack, TrackPlan, power_track_plan
from repro.routing.router import (
    GridRouter,
    NetPlan,
    NetRoute,
    RouteStep,
    RoutingRequest,
    RoutingResult,
)
from repro.routing.hier_router import CellRoutePlans, HierarchicalRouter, LogicalNet

__all__ = [
    "AStarSearch",
    "SearchResult",
    "PredefinedTrack",
    "TrackPlan",
    "power_track_plan",
    "GridRouter",
    "NetPlan",
    "NetRoute",
    "RouteStep",
    "RoutingRequest",
    "RoutingResult",
    "CellRoutePlans",
    "HierarchicalRouter",
    "LogicalNet",
]
