"""Net-level grid router: multi-pin nets, ordering, rip-up-and-retry.

:class:`GridRouter` routes a list of :class:`RoutingRequest` objects on one
:class:`~repro.layout.grid.RoutingGrid`:

* nets are ordered shortest-bounding-box first (short local nets are the
  hardest to detour, so they go first),
* each multi-pin net is built incrementally: every further pin is connected
  to the *whole* already-routed tree with a multi-source A* search,
* routed wires become obstacles for subsequent nets,
* nets that fail get one retry in a final pass after everything else has
  been routed (a simple rip-up-free variant of rip-up-and-reroute that is
  sufficient for the regular, low-congestion ACIM structures).

Paths are converted into wire rectangles per layer plus via markers, ready
to be added to a layout cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError
from repro.layout.geometry import Point, Rect
from repro.layout.grid import GridNode, RoutingGrid
from repro.routing.astar import AStarSearch
from repro.technology.tech import Technology


@dataclass(frozen=True)
class RoutingRequest:
    """One net to route.

    Attributes:
        net: net name.
        pins: pin access points as (point, layer index) pairs.
        critical: critical nets are routed first within their length class.
    """

    net: str
    pins: Tuple[Tuple[Point, int], ...]
    critical: bool = False

    def __post_init__(self) -> None:
        if len(self.pins) < 2:
            raise RoutingError(f"net {self.net!r} needs at least two pins")

    def bbox_semiperimeter(self) -> int:
        """Half-perimeter of the pin bounding box (ordering heuristic)."""
        xs = [p.x for p, _layer in self.pins]
        ys = [p.y for p, _layer in self.pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))


@dataclass
class NetRoute:
    """The routed geometry of one net.

    Attributes:
        net: net name.
        nodes: all grid nodes used by the net.
        wires: (layer name, rect) wire segments.
        vias: (via name, point) markers where the route changes layers.
        wirelength: total routed length in dbu.
    """

    net: str
    nodes: List[GridNode] = field(default_factory=list)
    wires: List[Tuple[str, Rect]] = field(default_factory=list)
    vias: List[Tuple[str, Point]] = field(default_factory=list)
    wirelength: int = 0


@dataclass
class RoutingResult:
    """Outcome of routing a set of nets.

    Attributes:
        routes: successfully routed nets, keyed by net name.
        failed: names of nets that could not be routed.
        total_wirelength: sum of all routed wirelengths in dbu.
        via_count: total number of vias inserted.
    """

    routes: Dict[str, NetRoute] = field(default_factory=dict)
    failed: List[str] = field(default_factory=list)
    total_wirelength: int = 0
    via_count: int = 0

    @property
    def complete(self) -> bool:
        """True when every requested net was routed."""
        return not self.failed


class GridRouter:
    """Routes nets sequentially on a 3-D routing grid."""

    def __init__(
        self,
        grid: RoutingGrid,
        technology: Technology,
        max_expansions: int = 400_000,
    ) -> None:
        self.grid = grid
        self.technology = technology
        self.search = AStarSearch(grid, max_expansions=max_expansions)

    # -- public API ----------------------------------------------------------------

    def route(self, requests: Sequence[RoutingRequest]) -> RoutingResult:
        """Route every request; wires of earlier nets block later ones."""
        result = RoutingResult()
        ordered = sorted(
            requests, key=lambda r: (not r.critical, r.bbox_semiperimeter())
        )
        deferred: List[RoutingRequest] = []
        for request in ordered:
            route = self._route_net(request)
            if route is None:
                deferred.append(request)
            else:
                self._commit(route, result)
        for request in deferred:
            route = self._route_net(request)
            if route is None:
                result.failed.append(request.net)
            else:
                self._commit(route, result)
        return result

    # -- net routing -----------------------------------------------------------------

    def _route_net(self, request: RoutingRequest) -> Optional[NetRoute]:
        pin_nodes = [self._pin_node(point, layer) for point, layer in request.pins]
        # Pin nodes must be routable even if cell geometry blocked them.
        for node in pin_nodes:
            self.grid.clear_obstacle(node)
        tree: List[GridNode] = [pin_nodes[0]]
        all_nodes: Set[GridNode] = {pin_nodes[0]}
        for target in pin_nodes[1:]:
            if target in all_nodes:
                continue
            found = self.search.search(sources=tree, targets=[target])
            if not found.found:
                return None
            for node in found.path:
                if node not in all_nodes:
                    all_nodes.add(node)
                    tree.append(node)
        route = NetRoute(net=request.net, nodes=list(all_nodes))
        self._emit_geometry(route)
        return route

    def _commit(self, route: NetRoute, result: RoutingResult) -> None:
        for node in route.nodes:
            self.grid.add_obstacle(node)
        result.routes[route.net] = route
        result.total_wirelength += route.wirelength
        result.via_count += len(route.vias)

    def _pin_node(self, point: Point, layer: int) -> GridNode:
        if not 0 <= layer < self.grid.num_layers:
            raise RoutingError(f"pin layer index {layer} out of range")
        return self.grid.point_to_node(point, layer)

    # -- geometry emission ----------------------------------------------------------------

    def _emit_geometry(self, route: NetRoute) -> None:
        """Convert the node set into wire rectangles and via markers."""
        nodes = set(route.nodes)
        pitch = self.grid.pitch
        wirelength = 0
        for node in route.nodes:
            layer = self.grid.layers[node.layer]
            point = self.grid.node_to_point(node)
            half_width = max(layer.default_width or layer.min_width, 10) // 2
            # Emit a segment towards each same-layer neighbour that is also
            # part of the net (only in +x / +y to avoid duplicates).
            for dx, dy in ((1, 0), (0, 1)):
                neighbor = GridNode(node.x + dx, node.y + dy, node.layer)
                if neighbor not in nodes:
                    continue
                neighbor_point = self.grid.node_to_point(neighbor)
                rect = Rect(
                    min(point.x, neighbor_point.x) - half_width,
                    min(point.y, neighbor_point.y) - half_width,
                    max(point.x, neighbor_point.x) + half_width,
                    max(point.y, neighbor_point.y) + half_width,
                )
                route.wires.append((layer.name, rect))
                wirelength += pitch
            # Via to the layer above, when both nodes belong to the net.
            above = GridNode(node.x, node.y, node.layer + 1)
            if above in nodes and node.layer + 1 < self.grid.num_layers:
                upper_layer = self.grid.layers[node.layer + 1]
                via = self.technology.via_between(layer.name, upper_layer.name)
                route.vias.append((via.name, point))
                lower_pad, upper_pad = via.footprint()
                route.wires.append((layer.name, Rect.from_center(
                    point, lower_pad, lower_pad)))
                route.wires.append((upper_layer.name, Rect.from_center(
                    point, upper_pad, upper_pad)))
                route.wires.append((via.cut_layer, Rect.from_center(
                    point, via.cut_size, via.cut_size)))
        # Isolated single-node nets (pins already coincident) still get a pad.
        if not route.wires and route.nodes:
            node = route.nodes[0]
            layer = self.grid.layers[node.layer]
            point = self.grid.node_to_point(node)
            width = max(layer.default_width or layer.min_width, 10)
            route.wires.append((layer.name, Rect.from_center(point, width, width)))
        route.wirelength = wirelength
