"""Net-level grid router: multi-pin nets, ordering, rip-up-and-retry.

:class:`GridRouter` routes a list of :class:`RoutingRequest` objects on one
:class:`~repro.layout.grid.RoutingGrid`:

* nets are ordered shortest-bounding-box first (short local nets are the
  hardest to detour, so they go first),
* each multi-pin net is built incrementally: every further pin is connected
  to the *whole* already-routed tree with a multi-source A* search,
* routed wires become obstacles for subsequent nets,
* nets that fail get one retry in a final pass after everything else has
  been routed (a simple rip-up-free variant of rip-up-and-reroute that is
  sufficient for the regular, low-congestion ACIM structures).

Paths are converted into wire rectangles per layer plus via markers, ready
to be added to a layout cell.

Routing is fully deterministic, so every net's construction can be recorded
as a :class:`NetPlan` — the per-target search results in tree-growth order —
and replayed later on a compatible grid.  Replay skips the A* searches whose
recorded paths are still valid (target unchanged, path in bounds and
unblocked) and falls back to a live search at the first divergence, which is
what makes near-miss macro derivation cheap while staying exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError
from repro.layout.geometry import Point, Rect
from repro.layout.grid import GridNode, RoutingGrid
from repro.routing.astar import AStarSearch
from repro.technology.tech import Technology


@dataclass(frozen=True)
class RoutingRequest:
    """One net to route.

    Attributes:
        net: net name.
        pins: pin access points as (point, layer index) pairs.
        critical: critical nets are routed first within their length class.
    """

    net: str
    pins: Tuple[Tuple[Point, int], ...]
    critical: bool = False

    def __post_init__(self) -> None:
        if len(self.pins) < 2:
            raise RoutingError(f"net {self.net!r} needs at least two pins")

    def bbox_semiperimeter(self) -> int:
        """Half-perimeter of the pin bounding box (ordering heuristic)."""
        xs = [p.x for p, _layer in self.pins]
        ys = [p.y for p, _layer in self.pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))


@dataclass(frozen=True)
class RouteStep:
    """One tree-growth step of a net: connect ``target`` to the tree.

    Attributes:
        target: the pin node this step connected.
        path: the full A* path (source to target inclusive) that connected
            it; empty when the target was already part of the tree.
    """

    target: GridNode
    path: Tuple[GridNode, ...] = ()


@dataclass(frozen=True)
class NetPlan:
    """Replayable construction record of one routed net.

    Steps align positionally with the net's pin list (one step per pin
    after the root), so a plan recorded on a smaller configuration is a
    valid prefix for a grown neighbour of the same macro family.
    """

    root: GridNode
    steps: Tuple[RouteStep, ...] = ()


@dataclass
class NetRoute:
    """The routed geometry of one net.

    Attributes:
        net: net name.
        nodes: all grid nodes used by the net.
        wires: (layer name, rect) wire segments.
        vias: (via name, point) markers where the route changes layers.
        wirelength: total routed length in dbu.
        plan: replayable construction record of the net.
        replayed_steps: tree-growth steps satisfied from a supplied plan.
        searched_steps: tree-growth steps that ran a live A* search.
    """

    net: str
    nodes: List[GridNode] = field(default_factory=list)
    wires: List[Tuple[str, Rect]] = field(default_factory=list)
    vias: List[Tuple[str, Point]] = field(default_factory=list)
    wirelength: int = 0
    plan: Optional[NetPlan] = None
    replayed_steps: int = 0
    searched_steps: int = 0


@dataclass
class RoutingResult:
    """Outcome of routing a set of nets.

    Attributes:
        routes: successfully routed nets, keyed by net name.
        failed: names of nets that could not be routed.
        total_wirelength: sum of all routed wirelengths in dbu.
        via_count: total number of vias inserted.
        replayed_steps: tree-growth steps replayed from supplied plans.
        searched_steps: tree-growth steps that ran a live A* search.
    """

    routes: Dict[str, NetRoute] = field(default_factory=dict)
    failed: List[str] = field(default_factory=list)
    total_wirelength: int = 0
    via_count: int = 0
    replayed_steps: int = 0
    searched_steps: int = 0

    @property
    def complete(self) -> bool:
        """True when every requested net was routed."""
        return not self.failed


class GridRouter:
    """Routes nets sequentially on a 3-D routing grid."""

    def __init__(
        self,
        grid: RoutingGrid,
        technology: Technology,
        max_expansions: int = 400_000,
    ) -> None:
        self.grid = grid
        self.technology = technology
        self.search = AStarSearch(grid, max_expansions=max_expansions)

    # -- public API ----------------------------------------------------------------

    def route(
        self,
        requests: Sequence[RoutingRequest],
        plans: Optional[Mapping[str, NetPlan]] = None,
    ) -> RoutingResult:
        """Route every request; wires of earlier nets block later ones.

        When ``plans`` supplies a :class:`NetPlan` for a net, its recorded
        steps are replayed instead of searched for as long as they stay
        valid on this grid; the remaining pins fall back to live search.
        """
        result = RoutingResult()
        ordered = sorted(
            requests, key=lambda r: (not r.critical, r.bbox_semiperimeter())
        )
        deferred: List[RoutingRequest] = []
        for request in ordered:
            route = self._route_net(request, plans.get(request.net) if plans else None)
            if route is None:
                deferred.append(request)
            else:
                self._commit(route, result)
        for request in deferred:
            route = self._route_net(request, plans.get(request.net) if plans else None)
            if route is None:
                result.failed.append(request.net)
            else:
                self._commit(route, result)
        return result

    # -- net routing -----------------------------------------------------------------

    def _route_net(
        self, request: RoutingRequest, plan: Optional[NetPlan] = None
    ) -> Optional[NetRoute]:
        pin_nodes = [self._pin_node(point, layer) for point, layer in request.pins]
        # Pin nodes must be routable even if cell geometry blocked them.
        for node in pin_nodes:
            self.grid.clear_obstacle(node)
        tree: List[GridNode] = [pin_nodes[0]]
        all_nodes: Set[GridNode] = {pin_nodes[0]}
        steps: List[RouteStep] = []
        replayed = 0
        searched = 0
        # A plan only applies while it mirrors this net's construction
        # exactly; the first divergence disables it for all later pins.
        plan_live = plan is not None and plan.root == pin_nodes[0]
        for index, target in enumerate(pin_nodes[1:]):
            step = None
            if plan_live and index < len(plan.steps):
                step = plan.steps[index]
                if not self._step_valid(step, target, all_nodes):
                    plan_live = False
                    step = None
            else:
                plan_live = False
            if target in all_nodes:
                steps.append(RouteStep(target=target))
                if step is not None:
                    replayed += 1
                continue
            if step is not None:
                path: Sequence[GridNode] = step.path
                replayed += 1
            else:
                found = self.search.search(sources=tree, targets=[target])
                if not found.found:
                    return None
                path = found.path
                searched += 1
            for node in path:
                if node not in all_nodes:
                    all_nodes.add(node)
                    tree.append(node)
            steps.append(RouteStep(target=target, path=tuple(path)))
        route = NetRoute(
            net=request.net,
            nodes=list(all_nodes),
            plan=NetPlan(root=pin_nodes[0], steps=tuple(steps)),
            replayed_steps=replayed,
            searched_steps=searched,
        )
        self._emit_geometry(route)
        return route

    def _step_valid(
        self, step: RouteStep, target: GridNode, all_nodes: Set[GridNode]
    ) -> bool:
        """True when a recorded step can stand in for a live search."""
        if step.target != target:
            return False
        if not step.path:
            # An empty step recorded a target already in the tree; it only
            # replays if that still holds here.
            return target in all_nodes
        if target in all_nodes or step.path[0] not in all_nodes:
            return False
        if step.path[-1] != target:
            return False
        for node in step.path:
            if not self.grid.in_bounds(node):
                return False
            if node not in all_nodes and self.grid.is_blocked(node):
                return False
        return True

    def _commit(self, route: NetRoute, result: RoutingResult) -> None:
        for node in route.nodes:
            self.grid.add_obstacle(node)
        result.routes[route.net] = route
        result.total_wirelength += route.wirelength
        result.via_count += len(route.vias)
        result.replayed_steps += route.replayed_steps
        result.searched_steps += route.searched_steps

    def _pin_node(self, point: Point, layer: int) -> GridNode:
        if not 0 <= layer < self.grid.num_layers:
            raise RoutingError(f"pin layer index {layer} out of range")
        return self.grid.point_to_node(point, layer)

    # -- geometry emission ----------------------------------------------------------------

    def _emit_geometry(self, route: NetRoute) -> None:
        """Convert the node set into wire rectangles and via markers."""
        nodes = set(route.nodes)
        pitch = self.grid.pitch
        wirelength = 0
        for node in route.nodes:
            layer = self.grid.layers[node.layer]
            point = self.grid.node_to_point(node)
            half_width = max(layer.default_width or layer.min_width, 10) // 2
            # Emit a segment towards each same-layer neighbour that is also
            # part of the net (only in +x / +y to avoid duplicates).
            for dx, dy in ((1, 0), (0, 1)):
                neighbor = GridNode(node.x + dx, node.y + dy, node.layer)
                if neighbor not in nodes:
                    continue
                neighbor_point = self.grid.node_to_point(neighbor)
                rect = Rect(
                    min(point.x, neighbor_point.x) - half_width,
                    min(point.y, neighbor_point.y) - half_width,
                    max(point.x, neighbor_point.x) + half_width,
                    max(point.y, neighbor_point.y) + half_width,
                )
                route.wires.append((layer.name, rect))
                wirelength += pitch
            # Via to the layer above, when both nodes belong to the net.
            above = GridNode(node.x, node.y, node.layer + 1)
            if above in nodes and node.layer + 1 < self.grid.num_layers:
                upper_layer = self.grid.layers[node.layer + 1]
                via = self.technology.via_between(layer.name, upper_layer.name)
                route.vias.append((via.name, point))
                lower_pad, upper_pad = via.footprint()
                route.wires.append((layer.name, Rect.from_center(
                    point, lower_pad, lower_pad)))
                route.wires.append((upper_layer.name, Rect.from_center(
                    point, upper_pad, upper_pad)))
                route.wires.append((via.cut_layer, Rect.from_center(
                    point, via.cut_size, via.cut_size)))
        # Isolated single-node nets (pins already coincident) still get a pad.
        if not route.wires and route.nodes:
            node = route.nodes[0]
            layer = self.grid.layers[node.layer]
            point = self.grid.node_to_point(node)
            width = max(layer.default_width or layer.min_width, 10)
            route.wires.append((layer.name, Rect.from_center(point, width, width)))
        route.wirelength = wirelength
