"""SPICE testbench generation for generated ACIM macros.

A production flow hands its generated netlists to a circuit simulator for
verification; this module writes that hand-off artefact.  For a design
point it produces a SPICE testbench that instantiates the generated macro,
ties the supplies, drives the operating-state control sequence of Figure 5
(reset, MAC, charge redistribution, B_ADC comparison clocks) with PWL
sources, applies a configurable activation/weight pattern, and adds
transient-analysis and measurement cards for the read-bitline settling and
the comparator decisions.

No SPICE engine ships with the reproduction (the behavioral simulator in
:mod:`repro.sim` plays that role), but the emitted testbench is valid
SPICE: the structural part round-trips through :func:`repro.netlist.parse_spice`
and the analysis cards follow standard HSPICE/ngspice syntax, so the file
can be dropped onto a real PDK setup unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.errors import FlowError
from repro.arch.spec import ACIMDesignSpec
from repro.arch.timing import TimingModel, TimingParameters
from repro.netlist.circuit import Circuit
from repro.netlist.spice import write_spice


@dataclass(frozen=True)
class TestbenchConfig:
    """Options of the generated testbench.

    (The ``__test__`` marker below only tells pytest this is not a test
    class, despite the name.)

    Attributes:
        vdd: supply voltage in volts.
        vcm: common-mode voltage in volts.
        activation_pattern: per-row activation bits; rows beyond the pattern
            repeat it cyclically.
        cycles: number of MAC + conversion cycles to simulate.
        temperature_c: simulation temperature in Celsius.
        edge_time: rise/fall time of the PWL control edges in seconds.
    """

    __test__ = False

    vdd: float = 0.9
    vcm: float = 0.45
    activation_pattern: Sequence[int] = (1, 0, 1, 1)
    cycles: int = 2
    temperature_c: float = 27.0
    edge_time: float = 50e-12

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise FlowError("testbench supply must be positive")
        if self.cycles < 1:
            raise FlowError("testbench needs at least one cycle")
        if not self.activation_pattern:
            raise FlowError("activation pattern must not be empty")
        if any(bit not in (0, 1) for bit in self.activation_pattern):
            raise FlowError("activation pattern must be binary")


class TestbenchGenerator:
    """Writes SPICE testbenches for generated macro netlists."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        timing: TimingParameters = TimingParameters(),
        config: TestbenchConfig = TestbenchConfig(),
    ) -> None:
        self.timing = timing
        self.config = config

    # -- public API -----------------------------------------------------------

    def generate(self, spec: ACIMDesignSpec, macro: Circuit) -> str:
        """Return the full testbench text for ``macro`` implementing ``spec``."""
        spec.validate()
        timing_model = TimingModel(spec, self.timing)
        cycle = timing_model.cycle_time
        lines: List[str] = [f"* EasyACIM testbench for {macro.name}"]
        lines.append(f"* {spec.describe()}")
        lines.append(f".TEMP {self.config.temperature_c:g}")
        lines.append(".OPTION POST")
        lines.append("")
        lines.append("* ------- generated macro -------")
        lines.append(write_spice(macro).replace(".END\n", "").rstrip())
        lines.append("")
        lines.append("* ------- supplies -------")
        lines.append(f"VVDD VDD 0 {self.config.vdd:g}")
        lines.append("VVSS VSS 0 0")
        lines.append(f"VVCM VCM 0 {self.config.vcm:g}")
        lines.append("")
        lines.append("* ------- control sequence (Figure 5) -------")
        lines.extend(self._control_sources(timing_model))
        lines.append("")
        lines.append("* ------- activations and write port -------")
        lines.extend(self._stimulus_sources(spec))
        lines.append("")
        lines.append("* ------- device under test -------")
        lines.append(self._dut_card(spec, macro))
        lines.append("")
        lines.append("* ------- analysis -------")
        stop = cycle * self.config.cycles
        lines.append(f".TRAN {self.config.edge_time:g} {stop:.4g}")
        lines.extend(self._measurements(spec, timing_model))
        lines.append(".END")
        return "\n".join(lines) + "\n"

    def write(
        self, spec: ACIMDesignSpec, macro: Circuit, path: Union[str, Path]
    ) -> Path:
        """Write the testbench to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.generate(spec, macro))
        return path

    # -- sections ---------------------------------------------------------------

    def _control_sources(self, timing_model: TimingModel) -> List[str]:
        cycle = timing_model.cycle_time
        compute_end = timing_model.compute_time
        sample_end = compute_end + timing_model.setup_time
        edge = self.config.edge_time
        vdd = self.config.vdd
        lines = []
        # RST: high briefly at the start of every cycle (reset to VCM).
        lines.append(self._pwl("VRST", "RST",
                               [(0.0, vdd), (0.1 * compute_end, vdd),
                                (0.1 * compute_end + edge, 0.0), (cycle, 0.0)],
                               cycle))
        # PCH: high during the MAC phase (drive the capacitor top plates).
        lines.append(self._pwl("VPCH", "PCH",
                               [(0.0, 0.0), (0.1 * compute_end, 0.0),
                                (0.1 * compute_end + edge, vdd),
                                (compute_end, vdd), (compute_end + edge, 0.0),
                                (cycle, 0.0)],
                               cycle))
        # CLK: one comparison edge per bit after the sampling phase.
        clk_points = [(0.0, 0.0), (sample_end, 0.0)]
        t = sample_end
        per_bit = timing_model.parameters.conversion_time_per_bit
        for _bit in range(timing_model.spec.adc_bits):
            clk_points.append((t + edge, vdd))
            clk_points.append((t + per_bit / 2.0, vdd))
            clk_points.append((t + per_bit / 2.0 + edge, 0.0))
            t += per_bit
        clk_points.append((cycle, 0.0))
        lines.append(self._pwl("VCLK", "CLK", clk_points, cycle))
        return lines

    def _stimulus_sources(self, spec: ACIMDesignSpec) -> List[str]:
        lines = []
        pattern = self.config.activation_pattern
        vdd = self.config.vdd
        for row in range(spec.height):
            bit = pattern[row % len(pattern)]
            lines.append(f"VXIN{row} XIN{row} 0 {vdd * bit:g}")
            lines.append(f"VWL{row} WL{row} 0 0")
        for column in range(spec.width):
            lines.append(f"VBL{column} BL{column} 0 {vdd:g}")
            lines.append(f"VBLB{column} BLB{column} 0 0")
        return lines

    def _dut_card(self, spec: ACIMDesignSpec, macro: Circuit) -> str:
        nets = []
        for pin in macro.pins:
            nets.append(pin.name)
        return f"XDUT {' '.join(nets)} {macro.name}"

    def _measurements(self, spec: ACIMDesignSpec, timing_model: TimingModel) -> List[str]:
        sample_end = timing_model.compute_time + timing_model.setup_time
        lines = [
            f".MEAS TRAN rbl_settled FIND V(XDUT.COL0.RBL) AT={sample_end:.4g}",
            f".MEAS TRAN dout0_final FIND V(DOUT0) AT={timing_model.cycle_time:.4g}",
        ]
        for bit in range(spec.adc_bits):
            t_bit = sample_end + (bit + 1) * timing_model.parameters.conversion_time_per_bit
            lines.append(
                f".MEAS TRAN comp_bit{bit} FIND V(XDUT.COL0.COMP_OUT) AT={t_bit:.4g}"
            )
        return lines

    @staticmethod
    def _pwl(name: str, net: str, points, period: float) -> str:
        rendered = " ".join(f"{t:.4g} {v:.3g}" for t, v in points)
        return f"{name} {net} 0 PWL({rendered}) R={period:.4g}"
