"""Baseline design flows for the Table-2 comparison.

The paper compares EasyACIM against two alternatives:

* the **traditional flow** — a fully manual analog design cycle taking one
  to two months with a fixed, hand-picked design point;
* **AutoDCIM** — an automated *digital* CIM compiler that takes
  user-defined design parameters and generates layouts, but performs no
  multi-objective optimisation of those parameters.

Both are modelled here so the comparison table is produced from executable
flow descriptions rather than hard-coded prose, and so the AutoDCIM-style
baseline can be run head-to-head against the EasyACIM explorer in the
ablation benchmarks (same estimation model, no Pareto search).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import FlowError
from repro.arch.spec import ACIMDesignSpec
from repro.dse.pareto import pareto_front
from repro.dse.problem import EvaluatedDesign
from repro.model.estimator import ACIMEstimator


@dataclass(frozen=True)
class FlowComparisonEntry:
    """One column of the Table-2 flow comparison.

    Attributes:
        name: flow name.
        design_type: "Analog", "Digital" or "Analog or Digital".
        layout_design: "Manual" or "Automatic".
        design_time: order-of-magnitude design time.
        design_space: how the flow covers the design space.
        parameter_determination: who chooses the design parameters.
    """

    name: str
    design_type: str
    layout_design: str
    design_time: str
    design_space: str
    parameter_determination: str


class TraditionalManualFlow:
    """Descriptor of the traditional manual ACIM design flow."""

    name = "Traditional Flow"

    def comparison_entry(self) -> FlowComparisonEntry:
        """The flow's Table-2 row."""
        return FlowComparisonEntry(
            name=self.name,
            design_type="Analog or Digital",
            layout_design="Manual",
            design_time="1-2 months",
            design_space="Fixed",
            parameter_determination="Manual",
        )

    def design_points(self, array_size: int) -> List[ACIMDesignSpec]:
        """A single hand-picked design point (what a manual team would tape out)."""
        height = 1
        candidate = array_size
        while candidate % 2 == 0 and height < 128:
            candidate //= 2
            height *= 2
        width = array_size // height
        local = 8 if height >= 8 else max(1, height)
        max_bits = 1
        while height // local >= 2 ** (max_bits + 1) and max_bits < 4:
            max_bits += 1
        return [ACIMDesignSpec(height, width, local, max_bits)]


class AutoDCIMBaselineFlow:
    """AutoDCIM-style baseline: user-defined parameters, no optimisation.

    The baseline evaluates exactly the design points the user supplies (or a
    small default set) with the same estimation model EasyACIM uses, but it
    performs no search: whatever the user picked is what gets built.  The
    resulting set is generally *not* Pareto-optimal, which is the measurable
    difference the ablation benchmark quantifies.
    """

    name = "AutoDCIM-style"

    def __init__(self, estimator: Optional[ACIMEstimator] = None) -> None:
        self.estimator = estimator or ACIMEstimator()

    def comparison_entry(self) -> FlowComparisonEntry:
        """The flow's Table-2 row."""
        return FlowComparisonEntry(
            name=self.name,
            design_type="Digital",
            layout_design="Automatic",
            design_time="NA",
            design_space="Unoptimized",
            parameter_determination="User-defined",
        )

    def run(
        self,
        array_size: int,
        user_specs: Optional[Sequence[ACIMDesignSpec]] = None,
    ) -> List[EvaluatedDesign]:
        """Evaluate the user-defined design points without any optimisation."""
        specs = list(user_specs) if user_specs else self._default_user_specs(array_size)
        designs: List[EvaluatedDesign] = []
        for spec in specs:
            if not spec.is_feasible(array_size):
                raise FlowError(
                    f"user-defined spec {spec.as_tuple()} is infeasible for "
                    f"array size {array_size}"
                )
            metrics = self.estimator.evaluate(spec)
            designs.append(EvaluatedDesign(spec, metrics, metrics.objectives()))
        return designs

    def pareto_efficiency(self, designs: Sequence[EvaluatedDesign]) -> float:
        """Fraction of the evaluated designs that are mutually non-dominated."""
        if not designs:
            return 0.0
        front = pareto_front([design.objectives for design in designs])
        return len(front) / len(designs)

    @staticmethod
    def _default_user_specs(array_size: int) -> List[ACIMDesignSpec]:
        """A plausible hand-picked parameter set a user might request."""
        specs = []
        height = 1
        while height * height <= array_size:
            height *= 2
        for candidate_height in (height, height // 2):
            if candidate_height < 2 or array_size % candidate_height != 0:
                continue
            width = array_size // candidate_height
            for local, bits in ((4, 3), (8, 3), (16, 2)):
                spec = ACIMDesignSpec(candidate_height, width, local, bits)
                if spec.is_feasible(array_size):
                    specs.append(spec)
        if not specs:
            raise FlowError(f"no default user specs for array size {array_size}")
        return specs


class EasyACIMFlowDescriptor:
    """Table-2 descriptor of this work's flow."""

    name = "EasyACIM"

    def comparison_entry(self) -> FlowComparisonEntry:
        """The flow's Table-2 row."""
        return FlowComparisonEntry(
            name=self.name,
            design_type="Analog",
            layout_design="Automatic",
            design_time="Several hours",
            design_space="Pareto frontier",
            parameter_determination="Automatic",
        )


def flow_comparison_table() -> List[FlowComparisonEntry]:
    """The full Table-2 comparison (traditional vs AutoDCIM vs EasyACIM)."""
    return [
        TraditionalManualFlow().comparison_entry(),
        AutoDCIMBaselineFlow().comparison_entry(),
        EasyACIMFlowDescriptor().comparison_entry(),
    ]
