"""Flow-facing driver over the physical pipeline's netlist stage.

The hierarchical netlist construction (paper Figure 4, middle) lives in
:class:`repro.physical.netlist_builder.NetlistBuilder`; this module keeps
the historical :class:`TemplateNetlistGenerator` front door as a thin
driver for single-design call sites, and adds the option of running
through a shared :class:`~repro.physical.pipeline.PhysicalPipeline` so
repeated generations of the same spec are served from the netlist
artifact cache.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arch.architecture import SynthesizableACIM
from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import CellLibrary
from repro.netlist.circuit import Circuit
from repro.physical.netlist_builder import NetlistBuilder
from repro.physical.pipeline import PhysicalPipeline


class TemplateNetlistGenerator:
    """Builds macro netlists from the cell library for given design specs.

    Args:
        library: the customized cell library (must provide every required
            leaf cell).
        pipeline: an externally owned :class:`PhysicalPipeline`; when
            given, generation runs through its cached netlist stage.
    """

    def __init__(
        self,
        library: CellLibrary,
        pipeline: Optional[PhysicalPipeline] = None,
    ) -> None:
        self.pipeline = pipeline
        self.builder = (
            pipeline.netlist_builder if pipeline is not None
            else NetlistBuilder(library)
        )
        self.library = self.builder.library

    # -- public API -----------------------------------------------------------------

    def generate(self, spec: ACIMDesignSpec) -> Circuit:
        """Generate the macro netlist for ``spec``."""
        if self.pipeline is not None:
            return self.pipeline.run(
                spec, generate_netlist=True, generate_layout=False,
            ).netlist
        return self.builder.build(spec)

    # -- statistics ----------------------------------------------------------------------

    def expected_instance_counts(self, spec: ACIMDesignSpec) -> Dict[str, int]:
        """Leaf-cell counts implied by the architecture (for verification)."""
        return SynthesizableACIM(spec).component_counts()
