"""The top flow controller (paper Figure 4).

:class:`EasyACIMFlow` wires the whole pipeline together:

1. take the three user inputs — customized cell library, synthesizable
   architecture (implicit in the generators) and technology files — plus
   the user-defined array size,
2. run the MOGA-based design space explorer to get the Pareto-frontier set
   of (H, W, L, B_ADC) solutions,
3. apply the user's distillation criteria to keep only the solutions that
   match the application scenario,
4. generate a netlist and a layout for every distilled solution.

The result object keeps every intermediate product so examples, tests and
benchmarks can inspect any stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import FlowError
from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import CellLibrary, default_cell_library
from repro.dse.distill import DistillationCriteria, distill
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.dse.nsga2 import NSGA2Config
from repro.dse.problem import EvaluatedDesign
from repro.flow.layout_gen import LayoutGenerationReport, LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.model.estimator import ACIMEstimator, ModelParameters
from repro.netlist.circuit import Circuit
from repro.technology.tech import Technology, generic28


@dataclass
class FlowInputs:
    """The flow's user inputs (paper Figure 4, left).

    Attributes:
        array_size: user-defined H * W in bit cells.
        technology: technology files (defaults to the synthetic generic28).
        library: customized cell library (defaults to the built-in library).
        criteria: user distillation criteria (None keeps the whole frontier).
        nsga2: explorer configuration.
        model: estimation-model parameters.
        max_layouts: cap on how many distilled solutions get full layouts.
    """

    array_size: int
    technology: Optional[Technology] = None
    library: Optional[CellLibrary] = None
    criteria: Optional[DistillationCriteria] = None
    nsga2: NSGA2Config = field(default_factory=NSGA2Config)
    model: Optional[ModelParameters] = None
    max_layouts: int = 3


@dataclass
class FlowResult:
    """Everything the flow produced.

    Attributes:
        inputs: the inputs the flow ran with.
        exploration: the design-space exploration result.
        distilled: the Pareto solutions surviving user distillation.
        netlists: generated macro netlists keyed by design-spec tuple.
        layouts: layout-generation reports keyed by design-spec tuple.
        runtime_seconds: end-to-end wall-clock time.
    """

    inputs: FlowInputs
    exploration: ExplorationResult
    distilled: List[EvaluatedDesign]
    netlists: Dict[tuple, Circuit] = field(default_factory=dict)
    layouts: Dict[tuple, LayoutGenerationReport] = field(default_factory=dict)
    runtime_seconds: float = 0.0

    def summary(self) -> str:
        """Human-readable multi-line summary of the flow outcome."""
        lines = [
            f"EasyACIM flow for {self.inputs.array_size}-bit array",
            f"  Pareto-frontier solutions : {len(self.exploration.pareto_set)}",
            f"  after user distillation   : {len(self.distilled)}",
            f"  netlists generated        : {len(self.netlists)}",
            f"  layouts generated         : {len(self.layouts)}",
            f"  total runtime             : {self.runtime_seconds:.2f} s",
        ]
        for key, report in self.layouts.items():
            lines.append(
                f"    layout {key}: {report.width_um:.0f} x {report.height_um:.0f} um, "
                f"{report.area_f2_per_bit:.0f} F^2/bit"
            )
        return "\n".join(lines)


class EasyACIMFlow:
    """End-to-end automated ACIM generation."""

    def __init__(self, inputs: FlowInputs) -> None:
        if inputs.array_size < 16:
            raise FlowError("array size must be at least 16 bit cells")
        self.inputs = inputs
        self.technology = inputs.technology or generic28()
        self.library = inputs.library or default_cell_library(self.technology)
        problems = self.library.check_consistency()
        if problems:
            raise FlowError("cell library inconsistent: " + "; ".join(problems))
        estimator = ACIMEstimator(inputs.model) if inputs.model else ACIMEstimator()
        self.explorer = DesignSpaceExplorer(estimator=estimator, config=inputs.nsga2)
        self.netlist_generator = TemplateNetlistGenerator(self.library)
        self.layout_generator = LayoutGenerator(self.library)

    # -- individual stages -----------------------------------------------------------

    def explore(self) -> ExplorationResult:
        """Stage 1: MOGA-based design space exploration."""
        return self.explorer.explore(self.inputs.array_size)

    def distill(self, exploration: ExplorationResult) -> List[EvaluatedDesign]:
        """Stage 2: user distillation of the Pareto-frontier set."""
        if self.inputs.criteria is None:
            return list(exploration.pareto_set)
        selected = distill(exploration.pareto_set, self.inputs.criteria)
        return selected or list(exploration.pareto_set)

    def generate_netlist(self, spec: ACIMDesignSpec) -> Circuit:
        """Stage 3: template-based netlist generation for one solution."""
        return self.netlist_generator.generate(spec)

    def generate_layout(
        self, spec: ACIMDesignSpec, **kwargs
    ) -> LayoutGenerationReport:
        """Stage 4: template-based hierarchical placement and routing."""
        return self.layout_generator.generate(spec, **kwargs)

    # -- end-to-end ----------------------------------------------------------------------

    def run(
        self,
        generate_netlists: bool = True,
        generate_layouts: bool = True,
        route_columns: bool = False,
        output_dir: Optional[str] = None,
    ) -> FlowResult:
        """Run the full flow.

        Args:
            generate_netlists: build macro netlists for the distilled set.
            generate_layouts: build macro layouts for (up to ``max_layouts``
                of) the distilled set.
            route_columns: run the maze router inside local arrays/columns
                (slower but produces routed interconnects).
            output_dir: where to export GDS/DEF when layouts are generated.
        """
        start = time.perf_counter()
        exploration = self.explore()
        distilled = self.distill(exploration)
        result = FlowResult(
            inputs=self.inputs,
            exploration=exploration,
            distilled=distilled,
        )
        selected = distilled[: self.inputs.max_layouts]
        if generate_netlists:
            for design in selected:
                result.netlists[design.spec.as_tuple()] = self.generate_netlist(
                    design.spec
                )
        if generate_layouts:
            for design in selected:
                result.layouts[design.spec.as_tuple()] = self.generate_layout(
                    design.spec,
                    route_column=route_columns,
                    export=output_dir is not None,
                    output_dir=output_dir,
                )
        result.runtime_seconds = time.perf_counter() - start
        return result
