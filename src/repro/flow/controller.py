"""The top flow controller (paper Figure 4).

:class:`_FlowCore` (driven through :meth:`repro.api.Session.flow`) wires
the whole pipeline together, mirroring the paper's Figure-4 narrative
left to right:

1. take the three user inputs — customized cell library, synthesizable
   architecture (implicit in the generators) and technology files — plus
   the user-defined array size,
2. run the MOGA-based design space explorer to get the Pareto-frontier set
   of (H, W, L, B_ADC) solutions,
3. apply the user's distillation criteria to keep only the solutions that
   match the application scenario,
4. generate a netlist and a layout for every distilled solution.

Every evaluation-shaped stage routes through one
:class:`~repro.engine.engine.EvaluationEngine` (see ``docs/engine.md``):
stage 2 evaluates NSGA-II populations as batches against the shared
memoization cache, and stage 4 fans the distilled solutions' netlist and
layout generation out across the engine's worker pool instead of a serial
for-loop — on the ``process`` backend each worker rebuilds its generators
from the (picklable) cell library and ships the finished layout report
back.  The backend and worker count come from :class:`FlowInputs`
(``backend``/``workers``), so the same flow description scales from a
laptop smoke run to a many-core sweep without code changes; the engine's
hit/miss/timing statistics are surfaced on :class:`FlowResult` for the
reporting layer.

The result object keeps every intermediate product so examples, tests and
benchmarks can inspect any stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import FlowError
from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import CellLibrary, default_cell_library
from repro.dse.distill import DistillationCriteria, distill
from repro.dse.explorer import ExplorationResult, _ExplorerCore
from repro.dse.nsga2 import NSGA2Config
from repro.dse.problem import EvaluatedDesign
from repro.engine import EvaluationEngine
from repro.flow.layout_gen import LayoutGenerationReport, LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.model.estimator import ACIMEstimator, ModelParameters
from repro.netlist.circuit import Circuit
from repro.physical.pipeline import PhysicalPipeline
from repro.store.result_store import ResultStore
from repro.technology.tech import Technology, generic28

#: Valid values of :attr:`FlowInputs.reuse`.
REUSE_MODES = ("auto", "off")


@dataclass
class FlowInputs:
    """The flow's user inputs (paper Figure 4, left).

    Attributes:
        array_size: user-defined H * W in bit cells.
        technology: technology files (defaults to the synthetic generic28).
        library: customized cell library (defaults to the built-in library).
        criteria: user distillation criteria (None keeps the whole frontier).
        nsga2: explorer configuration.
        model: estimation-model parameters.
        max_layouts: cap on how many distilled solutions get full layouts.
        backend: evaluation-engine backend (``serial``/``thread``/``process``)
            used for exploration batches and the netlist/layout fan-out.
            When left at ``serial`` while ``nsga2.backend`` requests a
            parallel backend, the optimizer's choice drives the whole flow.
        workers: engine pool size (None: ``nsga2.workers``, else CPU count).
        store: optional persistent result store.  The flow's engine warm
            starts from it (past evaluations become cache hits), computed
            evaluations are written behind into it, and the finished run is
            recorded as completed campaign metadata plus its Pareto set.
        campaign_name: name the run is recorded under in the store
            (default ``flow-<array_size>``; re-runs replace the record).
        engine: an externally owned :class:`EvaluationEngine` to run the
            whole flow through (the session layer shares its engine this
            way).  A borrowed engine is flushed, never closed, by the
            flow; when omitted the flow builds and owns one from
            ``backend``/``workers``/``store``.
        reuse: ``"auto"`` runs netlist/layout generation through the
            physical pipeline's macro/artifact cache (every unique
            sub-layout solved once, reused across the distilled designs
            and — with a store — across processes) whenever the flow's
            engine is serial; on an explicitly parallel engine the
            per-solution fan-out is kept, since worker processes cannot
            share one pipeline and serializing a parallel flow would
            regress it.  ``"off"`` always solves every design flat from
            scratch, exactly like the pre-pipeline flow (the regression
            baseline, fanned out across the engine pool).
        pipeline: an externally owned :class:`PhysicalPipeline` whose
            caches the flow should share (the session layer passes its
            own); when omitted and ``reuse="auto"``, the flow builds one
            over its library and store.
    """

    array_size: int
    technology: Optional[Technology] = None
    library: Optional[CellLibrary] = None
    criteria: Optional[DistillationCriteria] = None
    nsga2: NSGA2Config = field(default_factory=NSGA2Config)
    model: Optional[ModelParameters] = None
    max_layouts: int = 3
    backend: str = "serial"
    workers: Optional[int] = None
    store: Optional[ResultStore] = None
    campaign_name: Optional[str] = None
    engine: Optional[EvaluationEngine] = None
    reuse: str = "auto"
    pipeline: Optional[PhysicalPipeline] = None


@dataclass
class FlowResult:
    """Everything the flow produced.

    Attributes:
        inputs: the inputs the flow ran with.
        exploration: the design-space exploration result.
        distilled: the Pareto solutions surviving user distillation.
        netlists: generated macro netlists keyed by design-spec tuple.
        layouts: layout-generation reports keyed by design-spec tuple.
        runtime_seconds: end-to-end wall-clock time (monotonic clock).
        engine_stats: evaluation-engine statistics of this run (backend,
            batches, cache hits, evaluations/sec).
        physical_stats: per-stage physical-pipeline statistics of this
            run (timings, cache hits, macros built/reused); empty when
            the flow ran with ``reuse="off"``.
    """

    inputs: FlowInputs
    exploration: ExplorationResult
    distilled: List[EvaluatedDesign]
    netlists: Dict[tuple, Circuit] = field(default_factory=dict)
    layouts: Dict[tuple, LayoutGenerationReport] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    engine_stats: Dict[str, float] = field(default_factory=dict)
    physical_stats: Dict = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable multi-line summary of the flow outcome."""
        lines = [
            f"EasyACIM flow for {self.inputs.array_size}-bit array",
            f"  Pareto-frontier solutions : {len(self.exploration.pareto_set)}",
            f"  after user distillation   : {len(self.distilled)}",
            f"  netlists generated        : {len(self.netlists)}",
            f"  layouts generated         : {len(self.layouts)}",
            f"  total runtime             : {self.runtime_seconds:.2f} s",
        ]
        if self.engine_stats:
            lines.append(
                f"  engine                    : "
                f"{self.engine_stats.get('backend')} x "
                f"{self.engine_stats.get('workers')} workers, "
                f"{self.engine_stats.get('cache_hits', 0)} cache hits, "
                f"{self.engine_stats.get('evaluations', 0)} evaluations"
            )
        if self.physical_stats:
            lines.append(
                f"  physical pipeline         : "
                f"{self.physical_stats.get('macros_built', 0)} macros built, "
                f"{self.physical_stats.get('macros_reused', 0)} reused, "
                f"{self.physical_stats.get('macros_derived', 0)} derived"
            )
        for key, report in self.layouts.items():
            lines.append(
                f"    layout {key}: {report.width_um:.0f} x {report.height_um:.0f} um, "
                f"{report.area_f2_per_bit:.0f} F^2/bit"
            )
        return "\n".join(lines)


def _generate_solution_artifacts(task):
    """Fan-out work unit: netlist + layout for one distilled solution.

    Module-level (and argument-picklable) so the ``process`` backend can
    ship it to pool workers; the serial and thread backends run it as-is.
    Rebuilding the generators from the library is trivial next to the
    layout generation itself.  Returns ``(spec_tuple, netlist | None,
    layout_report | None)``.
    """
    (library, spec_tuple, want_netlist, want_layout,
     route_columns, output_dir) = task
    netlist_generator = TemplateNetlistGenerator(library)
    layout_generator = LayoutGenerator(library)
    spec = ACIMDesignSpec(*spec_tuple)
    netlist = netlist_generator.generate(spec) if want_netlist else None
    report = None
    if want_layout:
        report = layout_generator.generate(
            spec,
            route_column=route_columns,
            export=output_dir is not None,
            output_dir=output_dir,
        )
    return spec_tuple, netlist, report


class _FlowCore:
    """End-to-end automated ACIM generation.

    Internal implementation behind :meth:`repro.api.Session.flow` (and
    direct core-level consumers).  The flow runs on one
    :class:`EvaluationEngine` — either the externally owned one passed via
    ``FlowInputs.engine`` (flushed but never closed here) or one it builds
    from the inputs' ``backend``/``workers`` and owns; exploration and the
    netlist/layout fan-out share its pool and cache.  An owned pool is
    released at the end of every :meth:`run` (and respawned lazily on the
    next), so no explicit cleanup is required; long-lived services can
    also use the flow as a context manager or call :meth:`close`.
    """

    def __init__(self, inputs: FlowInputs) -> None:
        if inputs.array_size < 16:
            raise FlowError("array size must be at least 16 bit cells")
        self.inputs = inputs
        self.technology = inputs.technology or generic28()
        self.library = inputs.library or default_cell_library(self.technology)
        problems = self.library.check_consistency()
        if problems:
            raise FlowError("cell library inconsistent: " + "; ".join(problems))
        self.estimator = (
            ACIMEstimator(inputs.model) if inputs.model else ACIMEstimator()
        )
        estimator = self.estimator
        # One backend choice drives the whole flow.  FlowInputs is the
        # source of truth; when it is left at the serial default but the
        # optimizer config asks for a parallel backend, honor the config
        # rather than silently ignoring it.
        backend = inputs.backend
        if backend == "serial" and inputs.nsga2.backend != "serial":
            backend = inputs.nsga2.backend
        workers = inputs.workers if inputs.workers is not None else inputs.nsga2.workers
        self._owns_engine = inputs.engine is None
        self.engine = inputs.engine or EvaluationEngine(
            backend, workers=workers, store=inputs.store
        )
        self.explorer = _ExplorerCore(
            estimator=estimator, config=inputs.nsga2, engine=self.engine
        )
        if inputs.reuse not in REUSE_MODES:
            raise FlowError(
                f"unknown reuse mode {inputs.reuse!r}; "
                f"expected one of {sorted(REUSE_MODES)}"
            )
        self.reuse = inputs.reuse != "off"
        if self.reuse:
            self.pipeline = inputs.pipeline or PhysicalPipeline(
                self.library, store=inputs.store, reuse=True
            )
        else:
            # The regression baseline: a private reuse-off pipeline that
            # reproduces the pre-pipeline flat generators exactly.
            self.pipeline = PhysicalPipeline(self.library, reuse=False)
        self.netlist_generator = TemplateNetlistGenerator(
            self.library, pipeline=self.pipeline if self.reuse else None
        )
        self.layout_generator = LayoutGenerator(
            self.library, pipeline=self.pipeline
        )

    def close(self) -> None:
        """Release an owned engine's worker pool (idempotent).

        A borrowed engine (``FlowInputs.engine``) belongs to its session;
        only its write-behind store buffer is flushed.
        """
        if self._owns_engine:
            self.engine.close()
        else:
            self.engine.flush_store()

    def __enter__(self) -> "_FlowCore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- individual stages -----------------------------------------------------------

    def explore(self) -> ExplorationResult:
        """Stage 1: MOGA-based design space exploration."""
        return self.explorer.explore(self.inputs.array_size)

    def distill(self, exploration: ExplorationResult) -> List[EvaluatedDesign]:
        """Stage 2: user distillation of the Pareto-frontier set."""
        if self.inputs.criteria is None:
            return list(exploration.pareto_set)
        selected = distill(exploration.pareto_set, self.inputs.criteria)
        return selected or list(exploration.pareto_set)

    def generate_netlist(self, spec: ACIMDesignSpec) -> Circuit:
        """Stage 3: template-based netlist generation for one solution."""
        return self.netlist_generator.generate(spec)

    def generate_layout(
        self, spec: ACIMDesignSpec, **kwargs
    ) -> LayoutGenerationReport:
        """Stage 4: template-based hierarchical placement and routing."""
        return self.layout_generator.generate(spec, **kwargs)

    # -- end-to-end ----------------------------------------------------------------------

    def run(
        self,
        generate_netlists: bool = True,
        generate_layouts: bool = True,
        route_columns: bool = False,
        output_dir: Optional[str] = None,
    ) -> FlowResult:
        """Run the full flow.

        Args:
            generate_netlists: build macro netlists for the distilled set.
            generate_layouts: build macro layouts for (up to ``max_layouts``
                of) the distilled set.
            route_columns: run the maze router inside local arrays/columns
                (slower but produces routed interconnects).
            output_dir: where to export GDS/DEF when layouts are generated.
        """
        start = time.perf_counter()
        stats_baseline = self.engine.stats.snapshot()
        try:
            exploration = self.explore()
            distilled = self.distill(exploration)
            result = FlowResult(
                inputs=self.inputs,
                exploration=exploration,
                distilled=distilled,
            )
            selected = distilled[: self.inputs.max_layouts]
            if selected and (generate_netlists or generate_layouts):
                if self._use_pipeline():
                    # Reuse-aware path: run every solution through the
                    # shared physical pipeline in-process, so identical
                    # sub-macros are solved once and every later design
                    # (and every later flow run on this pipeline/store)
                    # instantiates them from the cache.
                    physical_baseline = self.pipeline.stats.snapshot()
                    for design in selected:
                        spec = design.spec
                        product = self.pipeline.run(
                            spec,
                            generate_netlist=generate_netlists,
                            generate_layout=generate_layouts,
                            route_columns=route_columns,
                            export=generate_layouts and output_dir is not None,
                            output_dir=output_dir,
                        )
                        if product.netlist is not None:
                            result.netlists[spec.as_tuple()] = product.netlist
                        if product.report is not None:
                            result.layouts[spec.as_tuple()] = product.report
                    result.physical_stats = self.pipeline.stats.since(
                        physical_baseline
                    ).as_dict()
                else:
                    tasks = [
                        (
                            self.library,
                            design.spec.as_tuple(),
                            generate_netlists,
                            generate_layouts,
                            route_columns,
                            output_dir,
                        )
                        for design in selected
                    ]
                    # Flat path: fan the per-solution generation out across
                    # the engine, one task per solution so the pool
                    # load-balances the expensive layouts.
                    for spec_tuple, netlist, report in self.engine.map(
                        _generate_solution_artifacts, tasks, chunk_size=1
                    ):
                        if netlist is not None:
                            result.netlists[spec_tuple] = netlist
                        if report is not None:
                            result.layouts[spec_tuple] = report
            if self.inputs.store is not None:
                self._record_campaign(exploration, result.physical_stats)
                # Flush the write-behind buffer before the statistics are
                # snapshotted so store_writes reflects this run.
                self.engine.flush_store()
            result.engine_stats = self.engine.stats.since(stats_baseline).as_dict()
            result.runtime_seconds = time.perf_counter() - start
            return result
        finally:
            # Release owned pool workers between runs (and flush the
            # write-behind store buffer); the executor respawns lazily on
            # the next run.  Borrowed engines are only flushed.
            self.close()

    def _use_pipeline(self) -> bool:
        """Whether generation runs through the reuse pipeline.

        ``reuse="auto"`` picks the better strategy: the in-process reuse
        pipeline (one shared macro/artifact cache) on a serial engine, or
        the per-solution engine fan-out when the user configured a
        parallel pool — worker processes cannot share one pipeline, and
        silently serializing an explicitly parallel flow would trade a
        guaranteed speedup for a speculative one.  ``reuse="off"`` always
        takes the flat fan-out.
        """
        if not self.reuse:
            return False
        return self.engine.backend == "serial" or (self.engine.workers or 1) <= 1

    def _record_campaign(
        self,
        exploration: ExplorationResult,
        physical_stats: Optional[Dict] = None,
    ) -> None:
        """Record the finished exploration in the persistent store.

        When the reuse pipeline generated layouts, a ``run_metrics`` row
        is appended too, carrying the macro-ladder counters (built /
        reused / template-derived) so ``repro metrics`` shows where this
        flow's solves came from.
        """
        from repro.store.campaign import record_exploration

        name = self.inputs.campaign_name or f"flow-{self.inputs.array_size}"
        record_exploration(
            self.inputs.store, name, exploration,
            self.estimator, self.inputs.nsga2,
        )
        if physical_stats:
            self.inputs.store.put_run_metrics(name, {
                "status": "flow",
                "generations": exploration.generations,
                "runtime_seconds": round(exploration.runtime_seconds, 6),
                "evaluations": exploration.evaluations,
                "physical": {
                    "macros_built": physical_stats.get("macros_built", 0),
                    "macros_reused": physical_stats.get("macros_reused", 0),
                    "macros_derived": physical_stats.get("macros_derived", 0),
                },
            })


