"""Reporting helpers: plain-text tables for solutions, frontiers and flows.

The benchmark harness and the examples print the same rows/series the
paper's tables and figures report; these helpers keep that formatting in
one place (fixed-width text tables, CSV lines) so every entry point prints
consistent, diffable output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.dse.problem import EvaluatedDesign


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Format dictionaries as a fixed-width text table.

    Args:
        rows: records to print; all values are converted with ``str``.
        columns: column order; defaults to the keys of the first row.
    """
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_format_value(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(value.ljust(width) for value, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, separator] + body)


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def design_table(designs: Iterable[EvaluatedDesign]) -> List[Dict]:
    """Flatten evaluated designs into report rows."""
    return [design.metrics.as_dict() for design in designs]


def pareto_summary(designs: Sequence[EvaluatedDesign]) -> Dict[str, float]:
    """Headline ranges of a Pareto set (the paper's abstract-level claims)."""
    if not designs:
        return {}
    metrics = [design.metrics for design in designs]
    return {
        "solutions": len(designs),
        "snr_db_min": min(m.snr_db for m in metrics),
        "snr_db_max": max(m.snr_db for m in metrics),
        "tops_min": min(m.tops for m in metrics),
        "tops_max": max(m.tops for m in metrics),
        "tops_per_watt_min": min(m.tops_per_watt for m in metrics),
        "tops_per_watt_max": max(m.tops_per_watt for m in metrics),
        "area_f2_per_bit_min": min(m.area_f2_per_bit for m in metrics),
        "area_f2_per_bit_max": max(m.area_f2_per_bit for m in metrics),
    }


def solution_report(design: EvaluatedDesign) -> str:
    """Multi-line report of one Pareto solution."""
    metrics = design.metrics
    spec = design.spec
    lines = [
        f"Solution {spec.describe()}",
        f"  SNR            : {metrics.snr_db:.2f} dB",
        f"  throughput     : {metrics.tops:.3f} TOPS "
        f"({metrics.macs_per_second / 1e9:.1f} GMAC/s)",
        f"  energy         : {metrics.energy_per_mac * 1e15:.2f} fJ/MAC "
        f"({metrics.tops_per_watt:.0f} TOPS/W)",
        f"  area           : {metrics.area_f2_per_bit:.0f} F^2/bit "
        f"({metrics.total_area_um2:.0f} um^2 total)",
    ]
    return "\n".join(lines)


def engine_stats_table(stats: Dict[str, float]) -> List[Dict]:
    """One report row from an evaluation-engine statistics dictionary.

    Consumes the ``engine_stats`` attached to :class:`ExplorationResult`
    and :class:`FlowResult`; column order keeps the throughput figures
    (evaluations/sec) next to the cache effectiveness (hits vs computed).
    The timing splits make backend overhead visible in the report itself:
    ``worker_s`` is aggregate in-worker compute, ``dispatch_s`` is parent
    wall-clock not explained by ideally-parallel workers (scheduling and
    queueing), ``serialize_s`` is shared-memory publish/collect time —
    when ``dispatch_s`` rivals ``worker_s``, the batches are too cheap
    for the parallel backend and serial wins.

    Timing cells are defensively clamped: a near-empty batch can yield a
    slightly negative ``dispatch_seconds`` through clock rounding, and a
    zero or missing ``busy_seconds`` must never divide — both render as
    ``0.0`` instead of raising or printing ``-0.00``.
    """
    if not stats:
        return []
    busy = _clamped_seconds(stats.get("busy_seconds", 0.0))
    evaluations = stats.get("evaluations", 0)
    evals_per_s = stats.get("evaluations_per_second")
    if not isinstance(evals_per_s, (int, float)) or evals_per_s < 0:
        evals_per_s = (
            round(evaluations / busy, 1)
            if busy > 0.0 and isinstance(evaluations, (int, float))
            else 0.0
        )
    row = {
        "backend": stats.get("backend", "serial"),
        "workers": stats.get("workers", 1),
        "batches": stats.get("batches", 0),
        "tasks": stats.get("tasks", 0),
        "evaluations": evaluations,
        "cache_hits": stats.get("cache_hits", 0),
        "store_hits": stats.get("store_hits", 0),
        "store_writes": stats.get("store_writes", 0),
        "busy_s": busy,
        "dispatch_s": _clamped_seconds(stats.get("dispatch_seconds", 0.0)),
        "worker_s": _clamped_seconds(stats.get("worker_seconds", 0.0)),
        "serialize_s": _clamped_seconds(stats.get("serialize_seconds", 0.0)),
        "evals_per_s": evals_per_s,
    }
    # Surrogate-screening counters appear only when screening actually ran,
    # so plain runs keep their historical column set byte-identical.
    if stats.get("surrogate_exact") or stats.get("surrogate_screened"):
        row["surrogate_exact"] = stats.get("surrogate_exact", 0)
        row["surrogate_screened"] = stats.get("surrogate_screened", 0)
    return [row]


def _clamped_seconds(value) -> float:
    """A timing cell as a non-negative float (bad inputs become 0.0)."""
    if not isinstance(value, (int, float)) or value < 0:
        return 0.0
    return float(value)


def csv_lines(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> List[str]:
    """Render rows as CSV lines (header first)."""
    if not rows:
        return []
    columns = list(columns) if columns else list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_format_value(row.get(column, "")) for column in columns))
    return lines
