"""The end-to-end EasyACIM flow (paper Figure 4).

* :class:`~repro.flow.netlist_gen.TemplateNetlistGenerator` — assembles the
  macro netlist for a design spec from the cell library's component
  netlists (local arrays, columns, SAR logic, buffers).
* :class:`~repro.flow.layout_gen.LayoutGenerator` — template-based
  hierarchical placement and routing producing the macro layout, GDSII and
  DEF views.
* :class:`~repro.flow.controller.FlowInputs` /
  :class:`~repro.flow.controller.FlowResult` — the top flow
  controller's typed inputs and products (driven through
  :meth:`repro.api.Session.flow`): design-space exploration, user
  distillation, netlist and layout generation for every distilled
  solution, with reuse-aware generation through
  :mod:`repro.physical` (``FlowInputs.reuse``).
* :mod:`~repro.flow.baselines` — the traditional manual flow and the
  AutoDCIM-style flow used for the Table-2 comparison.
* :mod:`~repro.flow.report` — human-readable and CSV-style reporting.
"""

from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.flow.layout_gen import LayoutGenerationReport, LayoutGenerator
from repro.flow.controller import FlowInputs, FlowResult
from repro.flow.baselines import (
    AutoDCIMBaselineFlow,
    FlowComparisonEntry,
    TraditionalManualFlow,
    flow_comparison_table,
)
from repro.flow.report import (
    design_table,
    engine_stats_table,
    format_table,
    pareto_summary,
    solution_report,
)
from repro.flow.testbench import TestbenchConfig, TestbenchGenerator
from repro.flow.datasheet import DatasheetWriter

__all__ = [
    "TemplateNetlistGenerator",
    "LayoutGenerationReport",
    "LayoutGenerator",
    "FlowInputs",
    "FlowResult",
    "AutoDCIMBaselineFlow",
    "FlowComparisonEntry",
    "TraditionalManualFlow",
    "flow_comparison_table",
    "design_table",
    "engine_stats_table",
    "format_table",
    "pareto_summary",
    "solution_report",
    "TestbenchConfig",
    "TestbenchGenerator",
    "DatasheetWriter",
]
