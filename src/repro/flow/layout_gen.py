"""Flow-facing driver over the physical pipeline's layout stages.

The template-based hierarchical generation strategy (paper section 3.3,
Figure 7) lives in :class:`repro.physical.pipeline.PhysicalPipeline`;
this module keeps the historical :class:`LayoutGenerator` front door as a
thin driver so single-design call sites (tests, benchmarks, the layout
request) keep working unchanged.  A generator built directly — without a
shared pipeline — runs with reuse disabled, which is exactly the
pre-pipeline behaviour: every level solved from scratch, geometry
identical to the historical generator.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.spec import ACIMDesignSpec
from repro.cells.dimensions import CellFootprints
from repro.cells.library import CellLibrary
from repro.physical.pipeline import LayoutGenerationReport, PhysicalPipeline

__all__ = ["LayoutGenerationReport", "LayoutGenerator"]


class LayoutGenerator:
    """Generates macro layouts for design specs using the cell library.

    Args:
        library: the customized cell library.
        footprints: cell footprints (defaults to the calibrated area model).
        routing_pitch: routing-grid pitch in dbu.
        pipeline: an externally owned :class:`PhysicalPipeline` to run on
            (the session layer shares its reuse caches this way); when
            omitted, a private reuse-off pipeline reproduces the
            historical flat generator exactly.
    """

    def __init__(
        self,
        library: CellLibrary,
        footprints: Optional[CellFootprints] = None,
        routing_pitch: int = 200,
        pipeline: Optional[PhysicalPipeline] = None,
    ) -> None:
        self.pipeline = pipeline or PhysicalPipeline(
            library,
            footprints=footprints,
            routing_pitch=routing_pitch,
            reuse=False,
        )
        self.library = self.pipeline.library
        self.technology = self.pipeline.technology
        self.footprints = self.pipeline.footprints
        self.routing_pitch = self.pipeline.routing_pitch
        self.placer = self.pipeline.placer
        self.router = self.pipeline.router

    # -- public API --------------------------------------------------------------------

    def generate(
        self,
        spec: ACIMDesignSpec,
        output_dir: Optional[str] = None,
        route_column: bool = True,
        export: bool = False,
    ) -> LayoutGenerationReport:
        """Generate the macro layout for ``spec``.

        Args:
            spec: the design point (validated against Equation 12).
            output_dir: directory for GDS/DEF exports.
            route_column: route the local-array and column interconnects with
                the maze router (disable for very fast floorplan-only runs).
            export: write GDSII and DEF files when True.
        """
        result = self.pipeline.run(
            spec,
            generate_netlist=False,
            generate_layout=True,
            route_columns=route_column,
            export=export,
            output_dir=output_dir,
        )
        return result.report
