"""Template-based hierarchical layout generation (paper section 3.3).

The generator mirrors the netlist hierarchy on the physical side and works
bottom-up, exactly like the paper's Figure-7 strategy: the placement and
routing inside "Std" cells is kept, and each level only places its direct
children and routes their interconnections.

1. **Local array** — L SRAM cell instances stacked under the local
   computing cell (column-stack template); the shared local bitline (LBL)
   connecting them is routed by the hierarchical router.
2. **Column** — H/L local arrays stacked under the isolation switch, the
   comparator and the SAR controller; the read bitline (RBL) and the
   comparator-to-SAR nets are routed.
3. **Macro** — W identical column instances side by side (row template)
   with the per-row input buffers on the left and output buffers at the
   bottom; power and SAR-control nets are realised on pre-defined tracks.

The output is a :class:`~repro.layout.layout.LayoutCell` hierarchy plus a
:class:`LayoutGenerationReport` with die dimensions, F^2/bit and routing
statistics, and optional GDSII / DEF exports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import FlowError
from repro.arch.spec import ACIMDesignSpec
from repro.cells.dimensions import CellFootprints
from repro.cells.library import CellLibrary, sar_controller_for
from repro.layout.def_export import write_def
from repro.layout.gdsii import write_gds
from repro.layout.geometry import Rect, Transform
from repro.layout.layout import LayoutCell
from repro.placement.hierarchical import HierarchicalPlacer
from repro.placement.template import ColumnStackTemplate, RowTemplate
from repro.routing.hier_router import HierarchicalRouter, LogicalNet
from repro.routing.tracks import power_track_plan, sar_control_track_plan
from repro.units import dbu_to_um, um2_to_f2


@dataclass
class LayoutGenerationReport:
    """Result record of one macro layout generation.

    Attributes:
        spec: the generated design point.
        layout: the top-level macro layout cell.
        width_um / height_um: die dimensions.
        area_um2: die area.
        area_f2_per_bit: die area normalised to F^2 per bit cell.
        routed_nets / failed_nets: hierarchical routing statistics.
        total_wirelength_um: routed wirelength across all levels.
        runtime_seconds: wall-clock generation time.
        gds_path / def_path: export locations when exports were requested.
    """

    spec: ACIMDesignSpec
    layout: LayoutCell
    width_um: float
    height_um: float
    area_um2: float
    area_f2_per_bit: float
    routed_nets: int
    failed_nets: int
    total_wirelength_um: float
    runtime_seconds: float
    gds_path: Optional[str] = None
    def_path: Optional[str] = None

    def as_dict(self) -> dict:
        """Flat dictionary for tabular reports."""
        return {
            "H": self.spec.height,
            "W": self.spec.width,
            "L": self.spec.local_array_size,
            "B_ADC": self.spec.adc_bits,
            "width_um": round(self.width_um, 2),
            "height_um": round(self.height_um, 2),
            "area_um2": round(self.area_um2, 1),
            "area_f2_per_bit": round(self.area_f2_per_bit, 1),
            "routed_nets": self.routed_nets,
            "failed_nets": self.failed_nets,
            "runtime_s": round(self.runtime_seconds, 3),
        }


class LayoutGenerator:
    """Generates macro layouts for design specs using the cell library."""

    def __init__(
        self,
        library: CellLibrary,
        footprints: Optional[CellFootprints] = None,
        routing_pitch: int = 200,
    ) -> None:
        self.library = library
        self.technology = library.technology
        self.footprints = footprints or CellFootprints.from_area_parameters()
        self.routing_pitch = routing_pitch
        self.placer = HierarchicalPlacer()
        self.router = HierarchicalRouter(
            self.technology,
            routing_layers=("M2", "M3", "M4"),
            pitch=routing_pitch,
        )

    # -- public API --------------------------------------------------------------------

    def generate(
        self,
        spec: ACIMDesignSpec,
        output_dir: Optional[str] = None,
        route_column: bool = True,
        export: bool = False,
    ) -> LayoutGenerationReport:
        """Generate the macro layout for ``spec``.

        Args:
            spec: the design point (validated against Equation 12).
            output_dir: directory for GDS/DEF exports.
            route_column: route the local-array and column interconnects with
                the maze router (disable for very fast floorplan-only runs).
            export: write GDSII and DEF files when True.
        """
        spec.validate()
        start = time.perf_counter()
        routed = 0
        failed = 0
        wirelength_dbu = 0

        local_array, stats = self._build_local_array(spec, route=route_column)
        routed += stats["routed"]
        failed += stats["failed"]
        wirelength_dbu += stats["wirelength"]

        column, stats = self._build_column(spec, local_array, route=route_column)
        routed += stats["routed"]
        failed += stats["failed"]
        wirelength_dbu += stats["wirelength"]

        macro = self._build_macro(spec, column)
        bbox = macro.bounding_box()
        if bbox is None:
            raise FlowError("generated macro layout is empty")
        macro.boundary = bbox

        width_um = dbu_to_um(bbox.width)
        height_um = dbu_to_um(bbox.height)
        area_um2 = width_um * height_um
        report = LayoutGenerationReport(
            spec=spec,
            layout=macro,
            width_um=width_um,
            height_um=height_um,
            area_um2=area_um2,
            area_f2_per_bit=um2_to_f2(area_um2, self.technology.feature_size)
            / spec.array_size,
            routed_nets=routed,
            failed_nets=failed,
            total_wirelength_um=dbu_to_um(wirelength_dbu),
            runtime_seconds=time.perf_counter() - start,
        )
        if export:
            directory = Path(output_dir or ".")
            directory.mkdir(parents=True, exist_ok=True)
            gds_path = directory / f"{macro.name}.gds"
            def_path = directory / f"{macro.name}.def"
            write_gds(macro, gds_path, self.technology)
            write_def(macro, def_path)
            report.gds_path = str(gds_path)
            report.def_path = str(def_path)
        return report

    # -- hierarchy levels ------------------------------------------------------------------

    @staticmethod
    def _promote_pin(
        cell: LayoutCell,
        instance_name: str,
        child_pin: str,
        parent_pin: Optional[str] = None,
        size: int = 100,
    ) -> None:
        """Expose a child instance's pin as a pin of ``cell``.

        The parent pin is a small landing pad centred on the child pin's
        access point, on the child pin's layer, so upper hierarchy levels can
        connect to it without knowing the child's internals.
        """
        instance = cell.instance(instance_name)
        pin = instance.cell.pin(child_pin)
        point = instance.pin_access(child_pin)
        half = size // 2
        cell.add_pin(
            parent_pin or child_pin,
            pin.layer,
            Rect(point.x - half, point.y - half, point.x + half, point.y + half),
            direction=pin.direction,
        )

    def _build_local_array(self, spec: ACIMDesignSpec, route: bool):
        """Level 1: L SRAM cells plus the shared local computing cell."""
        size = spec.local_array_size
        sram = self.library.layout("sram8t")
        local_compute = self.library.layout("local_compute")
        cell = LayoutCell(f"local_array_L{size}")
        order = []
        for row in range(size):
            name = f"CELL{row}"
            cell.add_instance(name, sram)
            order.append(name)
        cell.add_instance("LC", local_compute)
        order.append("LC")
        self.placer.place_with_template(cell, ColumnStackTemplate(order=order))
        stats = {"routed": 0, "failed": 0, "wirelength": 0}
        if route:
            nets = [LogicalNet(
                name="LBL",
                terminals=tuple(
                    [(f"CELL{row}", "LBL") for row in range(size)] + [("LC", "LBL")]
                ),
                critical=True,
            )]
            report = self.router.route_cell(cell, nets, margin=400)
            stats["routed"] = len(report.result.routes)
            stats["failed"] = len(report.result.failed)
            stats["wirelength"] = report.result.total_wirelength
        # Expose the shared computing cell's column-facing pins one level up.
        self._promote_pin(cell, "LC", "RBL")
        for control in ("P", "N", "PB", "PCH", "RST"):
            self._promote_pin(cell, "LC", control)
        cell.set_boundary_from_contents()
        return cell, stats

    def _build_column(self, spec: ACIMDesignSpec, local_array: LayoutCell, route: bool):
        """Level 2: the full ACIM column."""
        num_local = spec.local_arrays_per_column
        comparator = self.library.layout("comparator")
        switch = self.library.layout("cmos_switch")
        sar = sar_controller_for(self.library, spec.adc_bits).layout(self.technology)
        cell = LayoutCell(
            f"acim_column_H{spec.height}_L{spec.local_array_size}_B{spec.adc_bits}"
        )
        order = []
        for index in range(num_local):
            name = f"LA{index}"
            cell.add_instance(name, local_array)
            order.append(name)
        cell.add_instance("SW_ISO", switch)
        cell.add_instance("COMP", comparator)
        cell.add_instance("SAR", sar)
        order += ["SW_ISO", "COMP", "SAR"]
        self.placer.place_with_template(cell, ColumnStackTemplate(order=order))
        cell.set_boundary_from_contents()
        stats = {"routed": 0, "failed": 0, "wirelength": 0}
        if route:
            rbl_terminals = [(f"LA{i}", "RBL") for i in range(num_local)]
            rbl_terminals += [("SW_ISO", "A"), ("COMP", "INP")]
            nets = [
                LogicalNet(name="RBL", terminals=tuple(rbl_terminals), critical=True),
                LogicalNet(
                    name="COMP_OUT",
                    terminals=(("COMP", "COM"), ("SAR", "COMP")),
                ),
            ]
            report = self.router.route_cell(cell, nets, margin=600)
            stats["routed"] = len(report.result.routes)
            stats["failed"] = len(report.result.failed)
            stats["wirelength"] = report.result.total_wirelength
        return cell, stats

    def _build_macro(self, spec: ACIMDesignSpec, column: LayoutCell) -> LayoutCell:
        """Level 3: W columns, peripheral buffers and pre-defined tracks."""
        macro = LayoutCell(
            f"easyacim_{spec.array_size}b_H{spec.height}"
            f"_L{spec.local_array_size}_B{spec.adc_bits}"
        )
        input_buffer = self.library.layout("input_buffer")
        output_buffer = self.library.layout("output_buffer")
        column_bbox = column.boundary or column.bounding_box()
        if column_bbox is None:
            raise FlowError("column layout is empty")
        buffer_column_width = input_buffer.width
        bottom_row_height = output_buffer.height

        # Input buffers: one per row, stacked on the left edge.
        for row in range(spec.height):
            macro.add_instance(
                f"IBUF{row}", input_buffer,
                Transform(0, bottom_row_height + row * input_buffer.height),
            )
        # Columns side by side to the right of the buffer column.
        order = []
        for col in range(spec.width):
            name = f"COL{col}"
            macro.add_instance(name, column)
            order.append(name)
        self.placer.place_with_template(macro, RowTemplate(
            order=order,
            start_x=buffer_column_width,
            y_offset=bottom_row_height,
        ))
        # Output buffers under each column.
        for col in range(spec.width):
            macro.add_instance(
                f"OBUF{col}", output_buffer,
                Transform(buffer_column_width + col * column_bbox.width, 0),
            )
        bbox = macro.bounding_box()
        if bbox is None:
            raise FlowError("macro layout is empty")
        # Pre-defined tracks: power stripes and SAR control lines across the
        # full macro width (the paper's critical-net tracks).
        power_plan = power_track_plan(bbox, self.technology, layer="M5")
        power_plan.realize(macro)
        control_plan = sar_control_track_plan(
            bbox, self.technology, spec.adc_bits, layer="M3",
            start_y=bbox.y_lo + bottom_row_height // 2,
        )
        control_plan.realize(macro)
        macro.add_shape("PRBOUND", bbox)
        return macro
