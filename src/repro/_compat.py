"""Deprecation plumbing for the pre-``repro.api`` front doors.

The legacy entry points (``DesignSpaceExplorer``, ``EasyACIMFlow``,
``CampaignManager``) keep working for one release as thin shims over the
internal implementation classes, but warn on construction so scripts
migrate to :class:`repro.api.Session` before the shims are removed.  The
warning is emitted from the shim subclasses only — the session layer
builds the implementation classes directly and therefore runs clean under
``python -W error::DeprecationWarning`` (the ``make api-smoke`` gate).
"""

from __future__ import annotations

import warnings


def warn_deprecated_entry_point(old: str, new: str) -> None:
    """Emit the one-release deprecation warning for a legacy front door."""
    warnings.warn(
        f"{old} is deprecated and will be removed in the next release; "
        f"route the work through repro.api.Session — {new}",
        DeprecationWarning,
        stacklevel=3,
    )
