"""Design-rule definitions and the rule set consumed by the DRC checker.

Only the rule categories actually needed by the EasyACIM layout flow are
modelled: minimum width, minimum spacing, minimum area, enclosure and
extension rules.  The DRC checker in :mod:`repro.layout.drc` evaluates these
rules over the flattened layout geometry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class RuleType(enum.Enum):
    """Supported design-rule categories."""

    MIN_WIDTH = "min_width"
    MIN_SPACING = "min_spacing"
    MIN_AREA = "min_area"
    ENCLOSURE = "enclosure"
    EXTENSION = "extension"


@dataclass(frozen=True)
class DesignRule:
    """A single design rule.

    Attributes:
        rule_type: the category of the rule.
        layer: primary layer the rule applies to.
        value: rule value in dbu (or dbu^2 for area rules).
        other_layer: secondary layer for enclosure / extension rules.
        name: optional human-readable rule name for DRC reports.
    """

    rule_type: RuleType
    layer: str
    value: int
    other_layer: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("rule value must be non-negative")
        if self.rule_type in (RuleType.ENCLOSURE, RuleType.EXTENSION) and not self.other_layer:
            raise ValueError(f"{self.rule_type.value} rule requires other_layer")

    def describe(self) -> str:
        """Human-readable one-line description used in DRC reports."""
        label = self.name or self.rule_type.value
        if self.other_layer:
            return f"{label}({self.layer}/{self.other_layer}) >= {self.value}"
        return f"{label}({self.layer}) >= {self.value}"


class DesignRuleSet:
    """Collection of design rules indexed by layer and rule type."""

    def __init__(self, rules: Optional[Iterable[DesignRule]] = None) -> None:
        self._rules: List[DesignRule] = []
        self._by_key: Dict[Tuple[RuleType, str, Optional[str]], DesignRule] = {}
        for rule in rules or ():
            self.add(rule)

    def add(self, rule: DesignRule) -> None:
        """Add a rule, rejecting duplicates for the same (type, layers) key."""
        key = (rule.rule_type, rule.layer, rule.other_layer)
        if key in self._by_key:
            raise ValueError(f"duplicate rule for {key}")
        self._by_key[key] = rule
        self._rules.append(rule)

    def __iter__(self):
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def get(
        self,
        rule_type: RuleType,
        layer: str,
        other_layer: Optional[str] = None,
    ) -> Optional[DesignRule]:
        """Return the matching rule or ``None``."""
        return self._by_key.get((rule_type, layer, other_layer))

    def value(
        self,
        rule_type: RuleType,
        layer: str,
        other_layer: Optional[str] = None,
        default: int = 0,
    ) -> int:
        """Return the rule value, or ``default`` when no rule exists."""
        rule = self.get(rule_type, layer, other_layer)
        return rule.value if rule is not None else default

    def min_width(self, layer: str, default: int = 0) -> int:
        """Minimum width of shapes on ``layer`` in dbu."""
        return self.value(RuleType.MIN_WIDTH, layer, default=default)

    def min_spacing(self, layer: str, default: int = 0) -> int:
        """Minimum same-layer spacing on ``layer`` in dbu."""
        return self.value(RuleType.MIN_SPACING, layer, default=default)

    def min_area(self, layer: str, default: int = 0) -> int:
        """Minimum shape area on ``layer`` in dbu^2."""
        return self.value(RuleType.MIN_AREA, layer, default=default)

    def enclosure(self, outer_layer: str, inner_layer: str, default: int = 0) -> int:
        """Required enclosure of ``inner_layer`` shapes by ``outer_layer``."""
        return self.value(RuleType.ENCLOSURE, outer_layer, inner_layer, default=default)

    def layers(self) -> List[str]:
        """All layers that have at least one rule."""
        seen = []
        for rule in self._rules:
            if rule.layer not in seen:
                seen.append(rule.layer)
        return seen

    @classmethod
    def from_layer_defaults(cls, layers) -> "DesignRuleSet":
        """Build width/spacing rules from per-layer defaults.

        Args:
            layers: iterable of :class:`repro.technology.layers.Layer`.
        """
        rules = cls()
        for layer in layers:
            if layer.min_width > 0:
                rules.add(DesignRule(RuleType.MIN_WIDTH, layer.name, layer.min_width))
            if layer.min_spacing > 0:
                rules.add(DesignRule(RuleType.MIN_SPACING, layer.name, layer.min_spacing))
        return rules
