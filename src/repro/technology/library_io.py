"""Serialisation of :class:`~repro.technology.tech.Technology` to/from dicts.

The paper's flow consumes "technology files" (Figure 4).  This module gives
the reproduction an equivalent externalised representation: a plain,
JSON-compatible dictionary that can be written to disk, versioned, and read
back without loss of the information the flow needs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TechnologyError
from repro.technology.layers import (
    Layer,
    LayerPurpose,
    LayerType,
    MetalDirection,
    ViaDefinition,
)
from repro.technology.rules import DesignRule, DesignRuleSet, RuleType
from repro.technology.tech import ElectricalParameters, Technology


def technology_to_dict(tech: Technology) -> dict:
    """Convert a technology to a JSON-compatible dictionary."""
    return {
        "name": tech.name,
        "feature_size": tech.feature_size,
        "manufacturing_grid": tech.manufacturing_grid,
        "layers": [_layer_to_dict(layer) for layer in tech.layers],
        "vias": [_via_to_dict(via) for via in tech.vias],
        "rules": [_rule_to_dict(rule) for rule in tech.rules],
        "electrical": {
            "vdd": tech.electrical.vdd,
            "vcm": tech.electrical.vcm,
            "temperature_k": tech.electrical.temperature_k,
            "unit_capacitance": tech.electrical.unit_capacitance,
            "cap_mismatch_kappa": tech.electrical.cap_mismatch_kappa,
            "gate_capacitance_per_um": tech.electrical.gate_capacitance_per_um,
            "wire_capacitance_per_um": tech.electrical.wire_capacitance_per_um,
        },
    }


def technology_from_dict(data: dict) -> Technology:
    """Rebuild a technology from the dictionary produced by
    :func:`technology_to_dict`."""
    try:
        layers = [_layer_from_dict(entry) for entry in data["layers"]]
        vias = [_via_from_dict(entry) for entry in data.get("vias", [])]
        rules = DesignRuleSet(_rule_from_dict(entry) for entry in data.get("rules", []))
        electrical = ElectricalParameters(**data.get("electrical", {}))
        return Technology(
            name=data["name"],
            feature_size=data["feature_size"],
            layers=layers,
            vias=vias,
            rules=rules,
            electrical=electrical,
            manufacturing_grid=data.get("manufacturing_grid", 1),
        )
    except KeyError as exc:
        raise TechnologyError(f"technology dictionary missing field: {exc}") from exc


def save_technology(tech: Technology, path: Union[str, Path]) -> None:
    """Write a technology description to a JSON file."""
    Path(path).write_text(json.dumps(technology_to_dict(tech), indent=2))


def load_technology(path: Union[str, Path]) -> Technology:
    """Read a technology description from a JSON file."""
    return technology_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# private helpers
# ---------------------------------------------------------------------------


def _layer_to_dict(layer: Layer) -> dict:
    return {
        "name": layer.name,
        "gds_layer": layer.gds_layer,
        "gds_datatype": layer.gds_datatype,
        "layer_type": layer.layer_type.value,
        "direction": layer.direction.value,
        "pitch": layer.pitch,
        "default_width": layer.default_width,
        "min_width": layer.min_width,
        "min_spacing": layer.min_spacing,
        "sheet_resistance": layer.sheet_resistance,
        "capacitance_per_um": layer.capacitance_per_um,
        "purpose": layer.purpose.value,
    }


def _layer_from_dict(data: dict) -> Layer:
    return Layer(
        name=data["name"],
        gds_layer=data["gds_layer"],
        gds_datatype=data.get("gds_datatype", 0),
        layer_type=LayerType(data.get("layer_type", "metal")),
        direction=MetalDirection(data.get("direction", "any")),
        pitch=data.get("pitch", 0),
        default_width=data.get("default_width", 0),
        min_width=data.get("min_width", 0),
        min_spacing=data.get("min_spacing", 0),
        sheet_resistance=data.get("sheet_resistance", 0.0),
        capacitance_per_um=data.get("capacitance_per_um", 0.0),
        purpose=LayerPurpose(data.get("purpose", "drawing")),
    )


def _via_to_dict(via: ViaDefinition) -> dict:
    return {
        "name": via.name,
        "lower_layer": via.lower_layer,
        "cut_layer": via.cut_layer,
        "upper_layer": via.upper_layer,
        "cut_size": via.cut_size,
        "cut_spacing": via.cut_spacing,
        "enclosure_lower": via.enclosure_lower,
        "enclosure_upper": via.enclosure_upper,
        "resistance": via.resistance,
    }


def _via_from_dict(data: dict) -> ViaDefinition:
    return ViaDefinition(**data)


def _rule_to_dict(rule: DesignRule) -> dict:
    return {
        "rule_type": rule.rule_type.value,
        "layer": rule.layer,
        "value": rule.value,
        "other_layer": rule.other_layer,
        "name": rule.name,
    }


def _rule_from_dict(data: dict) -> DesignRule:
    return DesignRule(
        rule_type=RuleType(data["rule_type"]),
        layer=data["layer"],
        value=data["value"],
        other_layer=data.get("other_layer"),
        name=data.get("name", ""),
    )
