"""The :class:`Technology` container and the ``generic28`` factory.

``generic28()`` builds the synthetic 28 nm-class technology used throughout
the reproduction as the stand-in for the proprietary TSMC28 PDK.  Its metal
pitches, via sizes and electrical parameters are chosen to be
self-consistent and representative of a 28 nm planar process; the cell
footprints in :mod:`repro.cells` are then calibrated on top of it so that
the Figure-8 macro dimensions of the paper are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import TechnologyError
from repro.technology.layers import (
    Layer,
    LayerMap,
    LayerType,
    MetalDirection,
    ViaDefinition,
)
from repro.technology.rules import DesignRule, DesignRuleSet, RuleType


@dataclass
class ElectricalParameters:
    """Process electrical parameters consumed by the estimation model.

    Attributes:
        vdd: nominal supply voltage in volts.
        vcm: common-mode voltage used by the QR compute model in volts.
        temperature_k: junction temperature in Kelvin.
        unit_capacitance: compute capacitor C_F value in farads.
        cap_mismatch_kappa: capacitor mismatch coefficient kappa such that
            sigma_C = kappa * sqrt(C) (Tripathi & Murmann fringe-cap model).
        gate_capacitance_per_um: MOS gate capacitance per micron of width.
        wire_capacitance_per_um: average routed-wire capacitance per micron.
    """

    vdd: float = 0.9
    vcm: float = 0.45
    temperature_k: float = 300.15
    unit_capacitance: float = 1.0e-15
    cap_mismatch_kappa: float = 4.0e-10
    gate_capacitance_per_um: float = 1.0e-15
    wire_capacitance_per_um: float = 0.2e-15


class Technology:
    """A complete technology description.

    Binds together the layer stack, via definitions, design rules, layer map
    and electrical parameters.  This is one of the three flow inputs in the
    paper's Figure 4 ("technology files").
    """

    def __init__(
        self,
        name: str,
        feature_size: float,
        layers: Iterable[Layer],
        vias: Iterable[ViaDefinition] = (),
        rules: Optional[DesignRuleSet] = None,
        electrical: Optional[ElectricalParameters] = None,
        manufacturing_grid: int = 1,
    ) -> None:
        """Create a technology.

        Args:
            name: technology name, e.g. ``"generic28"``.
            feature_size: feature size F in meters (used for F^2 reporting).
            layers: all mask layers.
            vias: via definitions between adjacent routing layers.
            rules: design rules; derived from layer defaults when omitted.
            electrical: electrical parameters; defaults when omitted.
            manufacturing_grid: snapping grid in dbu.
        """
        if feature_size <= 0:
            raise TechnologyError("feature size must be positive")
        if manufacturing_grid <= 0:
            raise TechnologyError("manufacturing grid must be positive")
        self.name = name
        self.feature_size = feature_size
        self.manufacturing_grid = manufacturing_grid
        self._layers: Dict[str, Layer] = {}
        for layer in layers:
            if layer.name in self._layers:
                raise TechnologyError(f"duplicate layer {layer.name!r}")
            self._layers[layer.name] = layer
        self._vias: Dict[str, ViaDefinition] = {}
        for via in vias:
            if via.name in self._vias:
                raise TechnologyError(f"duplicate via {via.name!r}")
            for ref in (via.lower_layer, via.cut_layer, via.upper_layer):
                if ref not in self._layers:
                    raise TechnologyError(
                        f"via {via.name!r} references unknown layer {ref!r}"
                    )
            self._vias[via.name] = via
        self.rules = rules or DesignRuleSet.from_layer_defaults(self._layers.values())
        self.electrical = electrical or ElectricalParameters()
        self.layer_map = LayerMap()
        for layer in self._layers.values():
            self.layer_map.add(layer.name, layer.gds_layer, layer.gds_datatype)

    # -- layer access -------------------------------------------------------

    def layer(self, name: str) -> Layer:
        """Return the layer with ``name``; raise :class:`TechnologyError` if absent."""
        try:
            return self._layers[name]
        except KeyError:
            raise TechnologyError(f"unknown layer {name!r} in technology {self.name!r}")

    def has_layer(self, name: str) -> bool:
        """True if the technology defines a layer called ``name``."""
        return name in self._layers

    @property
    def layers(self) -> List[Layer]:
        """All layers in definition order."""
        return list(self._layers.values())

    @property
    def routing_layers(self) -> List[Layer]:
        """Metal layers available to the router, in stack order."""
        return [layer for layer in self._layers.values() if layer.is_routing]

    def routing_layer_index(self, name: str) -> int:
        """Index of a routing layer within :attr:`routing_layers`."""
        for index, layer in enumerate(self.routing_layers):
            if layer.name == name:
                return index
        raise TechnologyError(f"{name!r} is not a routing layer")

    # -- via access ---------------------------------------------------------

    @property
    def vias(self) -> List[ViaDefinition]:
        """All via definitions."""
        return list(self._vias.values())

    def via(self, name: str) -> ViaDefinition:
        """Return the via definition called ``name``."""
        try:
            return self._vias[name]
        except KeyError:
            raise TechnologyError(f"unknown via {name!r} in technology {self.name!r}")

    def via_between(self, layer_a: str, layer_b: str) -> ViaDefinition:
        """Return the via connecting two routing layers (any order)."""
        for via in self._vias.values():
            if via.connects(layer_a, layer_b):
                return via
        raise TechnologyError(f"no via between {layer_a!r} and {layer_b!r}")

    # -- convenience --------------------------------------------------------

    def feature_size_nm(self) -> float:
        """Feature size in nanometers."""
        return self.feature_size * 1e9

    def validate(self) -> None:
        """Check internal consistency of the technology.

        Raises:
            TechnologyError: when the routing stack is unusable (fewer than
                two routing layers, or a missing via between adjacent ones).
        """
        routing = self.routing_layers
        if len(routing) < 2:
            raise TechnologyError("technology needs at least two routing layers")
        for lower, upper in zip(routing, routing[1:]):
            try:
                self.via_between(lower.name, upper.name)
            except TechnologyError:
                raise TechnologyError(
                    f"missing via between adjacent routing layers "
                    f"{lower.name!r} and {upper.name!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Technology(name={self.name!r}, F={self.feature_size_nm():.0f}nm, "
            f"layers={len(self._layers)}, vias={len(self._vias)})"
        )


def generic28(
    unit_capacitance: float = 1.0e-15,
    vdd: float = 0.9,
) -> Technology:
    """Build the synthetic generic 28 nm technology.

    The metal stack provides M1..M6 with alternating preferred directions,
    a MOM-capacitor marker layer used by the compute-capacitor cell, and
    poly/diffusion layers for the device-level cells.  Pitches and widths
    are representative of a 28 nm planar node (all values in nanometers).

    Args:
        unit_capacitance: compute capacitor value C_F in farads.
        vdd: nominal supply voltage.
    """
    layers = [
        Layer("NWELL", 1, layer_type=LayerType.WELL, min_width=200, min_spacing=250),
        Layer("DIFF", 2, layer_type=LayerType.DIFFUSION, min_width=50, min_spacing=80),
        Layer("POLY", 3, layer_type=LayerType.POLY, min_width=30, min_spacing=90),
        Layer("CONT", 4, layer_type=LayerType.CONTACT, min_width=40, min_spacing=80),
        Layer(
            "M1", 10, layer_type=LayerType.METAL, direction=MetalDirection.HORIZONTAL,
            pitch=100, default_width=50, min_width=50, min_spacing=50,
            sheet_resistance=0.8, capacitance_per_um=0.20e-15,
        ),
        Layer("VIA1", 11, layer_type=LayerType.VIA, min_width=50, min_spacing=70),
        Layer(
            "M2", 12, layer_type=LayerType.METAL, direction=MetalDirection.VERTICAL,
            pitch=100, default_width=50, min_width=50, min_spacing=50,
            sheet_resistance=0.8, capacitance_per_um=0.20e-15,
        ),
        Layer("VIA2", 13, layer_type=LayerType.VIA, min_width=50, min_spacing=70),
        Layer(
            "M3", 14, layer_type=LayerType.METAL, direction=MetalDirection.HORIZONTAL,
            pitch=100, default_width=50, min_width=50, min_spacing=50,
            sheet_resistance=0.7, capacitance_per_um=0.19e-15,
        ),
        Layer("VIA3", 15, layer_type=LayerType.VIA, min_width=50, min_spacing=70),
        Layer(
            "M4", 16, layer_type=LayerType.METAL, direction=MetalDirection.VERTICAL,
            pitch=200, default_width=100, min_width=100, min_spacing=100,
            sheet_resistance=0.4, capacitance_per_um=0.18e-15,
        ),
        Layer("VIA4", 17, layer_type=LayerType.VIA, min_width=100, min_spacing=140),
        Layer(
            "M5", 18, layer_type=LayerType.METAL, direction=MetalDirection.HORIZONTAL,
            pitch=200, default_width=100, min_width=100, min_spacing=100,
            sheet_resistance=0.4, capacitance_per_um=0.18e-15,
        ),
        Layer("VIA5", 19, layer_type=LayerType.VIA, min_width=100, min_spacing=140),
        Layer(
            "M6", 20, layer_type=LayerType.METAL, direction=MetalDirection.VERTICAL,
            pitch=400, default_width=200, min_width=200, min_spacing=200,
            sheet_resistance=0.2, capacitance_per_um=0.17e-15,
        ),
        Layer("MOMCAP", 30, layer_type=LayerType.CAPACITOR, min_width=50, min_spacing=50),
        Layer("PRBOUND", 63, layer_type=LayerType.MARKER),
    ]
    vias = [
        ViaDefinition("VIA12", "M1", "VIA1", "M2", cut_size=50, cut_spacing=70,
                      enclosure_lower=10, enclosure_upper=10, resistance=8.0),
        ViaDefinition("VIA23", "M2", "VIA2", "M3", cut_size=50, cut_spacing=70,
                      enclosure_lower=10, enclosure_upper=10, resistance=8.0),
        ViaDefinition("VIA34", "M3", "VIA3", "M4", cut_size=50, cut_spacing=70,
                      enclosure_lower=10, enclosure_upper=25, resistance=6.0),
        ViaDefinition("VIA45", "M4", "VIA4", "M5", cut_size=100, cut_spacing=140,
                      enclosure_lower=25, enclosure_upper=25, resistance=4.0),
        ViaDefinition("VIA56", "M5", "VIA5", "M6", cut_size=100, cut_spacing=140,
                      enclosure_lower=25, enclosure_upper=50, resistance=3.0),
    ]
    rules = DesignRuleSet.from_layer_defaults(layers)
    rules.add(DesignRule(RuleType.MIN_AREA, "M1", 10000, name="M1.area"))
    rules.add(DesignRule(RuleType.MIN_AREA, "M2", 10000, name="M2.area"))
    rules.add(DesignRule(RuleType.ENCLOSURE, "M1", 10, other_layer="VIA1", name="M1.enc.VIA1"))
    rules.add(DesignRule(RuleType.ENCLOSURE, "M2", 10, other_layer="VIA1", name="M2.enc.VIA1"))
    electrical = ElectricalParameters(
        vdd=vdd,
        vcm=vdd / 2.0,
        unit_capacitance=unit_capacitance,
    )
    tech = Technology(
        name="generic28",
        feature_size=28e-9,
        layers=layers,
        vias=vias,
        rules=rules,
        electrical=electrical,
        manufacturing_grid=5,
    )
    tech.validate()
    return tech
