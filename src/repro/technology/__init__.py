"""Synthetic process technology description (substitute for the TSMC28 PDK).

The paper implements EasyACIM on the TSMC28 PDK; that PDK is proprietary, so
this package provides a self-consistent synthetic 28 nm-class technology —
layer stack, via definitions, design rules and a layer map — exposing exactly
the information the placement, routing, DRC and layout-export stages consume.

Public entry points:

* :func:`repro.technology.tech.generic28` — the default technology used by
  every example and benchmark.
* :class:`repro.technology.tech.Technology` — the container binding layers,
  rules and electrical parameters together.
"""

from repro.technology.layers import (
    Layer,
    LayerPurpose,
    LayerType,
    MetalDirection,
    ViaDefinition,
)
from repro.technology.rules import DesignRule, DesignRuleSet, RuleType
from repro.technology.tech import Technology, generic28
from repro.technology.library_io import technology_from_dict, technology_to_dict

__all__ = [
    "Layer",
    "LayerPurpose",
    "LayerType",
    "MetalDirection",
    "ViaDefinition",
    "DesignRule",
    "DesignRuleSet",
    "RuleType",
    "Technology",
    "generic28",
    "technology_from_dict",
    "technology_to_dict",
]
