"""Layer and via definitions for the synthetic technology.

A :class:`Layer` models one mask layer (diffusion, poly, metal, via, ...).
Routing layers additionally carry a preferred direction, pitch and default
wire width, which the grid router uses to build its 3-D routing grid.  A
:class:`ViaDefinition` connects two adjacent metal layers through a cut
layer and records the cut size and required metal enclosure.

All geometric quantities are stored in integer database units (nanometers),
consistent with :mod:`repro.layout`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class LayerType(enum.Enum):
    """Broad classification of a mask layer."""

    DIFFUSION = "diffusion"
    WELL = "well"
    POLY = "poly"
    CONTACT = "contact"
    METAL = "metal"
    VIA = "via"
    CAPACITOR = "capacitor"
    MARKER = "marker"


class LayerPurpose(enum.Enum):
    """Purpose variant of a layer, mirroring GDS datatype usage."""

    DRAWING = "drawing"
    PIN = "pin"
    LABEL = "label"
    BLOCKAGE = "blockage"


class MetalDirection(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"
    ANY = "any"


@dataclass(frozen=True)
class Layer:
    """A single mask layer of the technology.

    Attributes:
        name: unique layer name, e.g. ``"M1"``.
        gds_layer: GDS stream layer number used on export.
        gds_datatype: GDS datatype number (0 for drawing shapes).
        layer_type: broad classification (metal, via, poly, ...).
        direction: preferred routing direction for metal layers.
        pitch: routing pitch in dbu for metal layers (track spacing).
        default_width: default wire width in dbu for metal layers.
        min_width: minimum legal shape width in dbu.
        min_spacing: minimum same-layer spacing in dbu.
        sheet_resistance: ohms per square, used by parasitic estimation.
        capacitance_per_um: wire capacitance per micrometer in farads,
            used by the routing-aware energy estimation.
        purpose: drawing / pin / label purpose.
    """

    name: str
    gds_layer: int
    gds_datatype: int = 0
    layer_type: LayerType = LayerType.METAL
    direction: MetalDirection = MetalDirection.ANY
    pitch: int = 0
    default_width: int = 0
    min_width: int = 0
    min_spacing: int = 0
    sheet_resistance: float = 0.0
    capacitance_per_um: float = 0.0
    purpose: LayerPurpose = LayerPurpose.DRAWING

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        if self.gds_layer < 0 or self.gds_datatype < 0:
            raise ValueError("GDS layer/datatype numbers must be non-negative")
        for attr in ("pitch", "default_width", "min_width", "min_spacing"):
            if getattr(self, attr) < 0:
                raise ValueError(f"layer {self.name}: {attr} must be non-negative")

    @property
    def is_routing(self) -> bool:
        """True if the layer can carry router wires."""
        return self.layer_type is LayerType.METAL and self.pitch > 0

    @property
    def is_via(self) -> bool:
        """True if the layer is a cut (via or contact) layer."""
        return self.layer_type in (LayerType.VIA, LayerType.CONTACT)

    def key(self) -> tuple:
        """GDS (layer, datatype) pair used by the exporters."""
        return (self.gds_layer, self.gds_datatype)


@dataclass(frozen=True)
class ViaDefinition:
    """A via connecting two adjacent routing layers through a cut layer.

    Attributes:
        name: unique via name, e.g. ``"VIA12"``.
        lower_layer: name of the lower metal layer.
        cut_layer: name of the cut layer.
        upper_layer: name of the upper metal layer.
        cut_size: square cut edge length in dbu.
        cut_spacing: minimum cut-to-cut spacing in dbu.
        enclosure_lower: metal enclosure of the cut on the lower layer (dbu).
        enclosure_upper: metal enclosure of the cut on the upper layer (dbu).
        resistance: per-cut resistance in ohms.
    """

    name: str
    lower_layer: str
    cut_layer: str
    upper_layer: str
    cut_size: int
    cut_spacing: int
    enclosure_lower: int
    enclosure_upper: int
    resistance: float = 0.0

    def __post_init__(self) -> None:
        if self.cut_size <= 0:
            raise ValueError(f"via {self.name}: cut size must be positive")
        if self.cut_spacing < 0:
            raise ValueError(f"via {self.name}: cut spacing must be non-negative")
        if self.enclosure_lower < 0 or self.enclosure_upper < 0:
            raise ValueError(f"via {self.name}: enclosures must be non-negative")

    def connects(self, layer_a: str, layer_b: str) -> bool:
        """True if this via connects the two given metal layers (any order)."""
        pair = {self.lower_layer, self.upper_layer}
        return pair == {layer_a, layer_b}

    def footprint(self) -> tuple:
        """Return (lower, upper) pad edge lengths in dbu including enclosure."""
        lower = self.cut_size + 2 * self.enclosure_lower
        upper = self.cut_size + 2 * self.enclosure_upper
        return (lower, upper)


@dataclass
class LayerMap:
    """Mapping between logical layer names and GDS (layer, datatype) pairs.

    The layer map is one of the "technology files" listed as a flow input in
    the paper (Figure 4).  It is intentionally a thin, serialisable object.
    """

    entries: dict = field(default_factory=dict)

    def add(self, name: str, gds_layer: int, gds_datatype: int = 0) -> None:
        """Register a layer name to (layer, datatype) mapping."""
        if name in self.entries:
            raise ValueError(f"duplicate layer-map entry {name!r}")
        self.entries[name] = (gds_layer, gds_datatype)

    def lookup(self, name: str) -> Optional[tuple]:
        """Return the (layer, datatype) pair for ``name`` or ``None``."""
        return self.entries.get(name)

    def reverse_lookup(self, gds_layer: int, gds_datatype: int = 0) -> Optional[str]:
        """Return the layer name for a (layer, datatype) pair, if known."""
        for name, key in self.entries.items():
            if key == (gds_layer, gds_datatype):
                return name
        return None

    def __len__(self) -> int:
        return len(self.entries)
