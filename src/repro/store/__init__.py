"""Persistent result store and resumable exploration campaigns.

This package makes evaluated design points durable, shared artifacts:

* :class:`~repro.store.result_store.ResultStore` — an SQLite-backed,
  content-addressed store of evaluated ``(spec, model-params, tech)``
  triples with atomic writes and schema versioning; the evaluation
  engine hydrates its LRU cache from it on startup and flushes computed
  misses back (write-behind), so every past campaign's work becomes a
  warm cache hit for future ones.
* :mod:`~repro.store.campaign` — named, checkpointed NSGA-II
  exploration campaigns (generation snapshots + RNG state) that can be
  killed and resumed bit-identically, driven through
  :meth:`repro.api.Session.campaign` and the CLI's
  ``campaign run / resume / list / query``.
* the ``artifacts`` table — content-addressed physical-pipeline
  artifacts (solved macros), see ``docs/physical.md``.

See ``docs/campaigns.md`` for the store layout, warm-start semantics and
resume guarantees.
"""

from repro.store.campaign import (
    CampaignResult,
    record_exploration,
)
from repro.store.result_store import (
    RANK_METRICS,
    SCHEMA_VERSION,
    CampaignRecord,
    ResultStore,
    StoredEvaluation,
    canonical_key,
    key_digest,
    params_digest_of,
)

__all__ = [
    "CampaignRecord",
    "CampaignResult",
    "RANK_METRICS",
    "ResultStore",
    "SCHEMA_VERSION",
    "StoredEvaluation",
    "canonical_key",
    "key_digest",
    "params_digest_of",
    "record_exploration",
]
