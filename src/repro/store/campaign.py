"""Named, checkpointed, resumable exploration campaigns.

:class:`_CampaignManagerCore` (driven through
:meth:`repro.api.Session.campaign`) runs NSGA-II explorations as *campaigns*: named
units of work whose configuration, per-generation state (population + RNG
state) and results all live in a :class:`~repro.store.result_store
.ResultStore`.  A campaign can be killed at any point — including in the
middle of a generation — and ``resume`` continues from the last committed
checkpoint, reproducing the uninterrupted run bit-identically (the NSGA-II
step loop consumes the RNG deterministically and design evaluation is
pure, so replaying from any snapshot converges on the same Pareto set).

Every campaign's engine is store-backed: its evaluation cache is hydrated
from the store on startup and computed misses are flushed back in batches,
so overlapping campaigns amortize each other's evaluations across process
lifetimes (visible as ``store_hits`` in the engine statistics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.distill import DistillationCriteria
from repro.dse.explorer import pareto_designs_from_population
from repro.dse.nsga2 import NSGA2, NSGA2Config
from repro.dse.problem import ACIMDesignProblem, EvaluatedDesign
from repro.dse.shard import ShardSpace, prewarm_store
from repro.dse.surrogate import SurrogateScreener, refine_seed_genomes
from repro.engine import (
    EvaluationEngine,
    parameters_cache_key,
    spec_cache_key,
)
from repro.errors import StoreError
from repro.model.estimator import ACIMEstimator
from repro.store.result_store import (
    CampaignRecord,
    ResultStore,
    StoredEvaluation,
    params_digest_of,
)

#: NSGA2Config fields persisted in (and restored from) the campaign row.
_NSGA2_FIELDS = (
    "population_size",
    "generations",
    "crossover_probability",
    "mutation_probability",
    "seed",
    "backend",
    "workers",
)

#: Problem-shape fields persisted alongside the optimiser configuration.
_PROBLEM_FIELDS = (
    "local_array_sizes",
    "max_adc_bits",
    "min_height",
    "max_height",
)


@dataclass
class CampaignResult:
    """Outcome of one ``run``/``resume`` call.

    Attributes:
        name: the campaign name.
        array_size: explored array size.
        status: ``completed`` or ``interrupted`` (checkpointed, resumable).
        generations_done: committed generations after this call.
        total_generations: the configured generation budget.
        evaluations: objective evaluations spent so far (all calls).
        pareto_set: the final Pareto set (empty while interrupted).
        runtime_seconds: wall-clock of this call.
        engine_stats: evaluation-engine statistics of this call, including
            ``store_hits`` (hits served from the persistent store).
        resumed: True when this call continued from a checkpoint.
        shard_stats: sharded pre-warm summary (``shards``, ``points``,
            per-shard reports); empty for unsharded runs and resumes.
        surrogate: surrogate-screening summary of this call (mode,
            exact/screened candidate counts); empty when screening is off.
    """

    name: str
    array_size: int
    status: str
    generations_done: int
    total_generations: int
    evaluations: int
    pareto_set: List[EvaluatedDesign] = field(default_factory=list)
    runtime_seconds: float = 0.0
    engine_stats: Dict[str, float] = field(default_factory=dict)
    resumed: bool = False
    shard_stats: Dict[str, object] = field(default_factory=dict)
    surrogate: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat summary row for report tables."""
        return {
            "name": self.name,
            "array_size": self.array_size,
            "status": self.status,
            "generations": f"{self.generations_done}/{self.total_generations}",
            "evaluations": self.evaluations,
            "pareto": len(self.pareto_set),
            "store_hits": self.engine_stats.get("store_hits", 0),
            "runtime_s": round(self.runtime_seconds, 2),
        }


class _CampaignManagerCore:
    """Runs, resumes and queries checkpointed exploration campaigns.

    Internal implementation behind :meth:`repro.api.Session.campaign`
    (and direct core-level consumers such as the tests).

    Args:
        store: the persistent result store all campaigns share.
        estimator: estimation model (must match on resume; the stored
            parameter digest is verified).
        checkpoint_every: commit a snapshot every N generations (1 keeps
            the resume cost at a single generation; larger values trade
            re-computation on resume for fewer commits).
        engine: an externally owned engine every drive runs through (the
            session layer shares its engine this way); it is flushed,
            never closed, here.  When omitted each ``run``/``resume``
            builds a store-backed engine from the campaign's recorded
            backend/workers and closes it afterwards.  The backend choice
            never changes results — evaluation is pure and NSGA-II fronts
            are backend-identical for a fixed seed.
    """

    def __init__(
        self,
        store: ResultStore,
        estimator: Optional[ACIMEstimator] = None,
        checkpoint_every: int = 1,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise StoreError("checkpoint_every must be at least 1")
        self.store = store
        self.estimator = estimator or ACIMEstimator()
        self.checkpoint_every = checkpoint_every
        self.engine = engine

    @property
    def params_digest(self) -> str:
        """Content address of this manager's model-parameter bundle."""
        return params_digest_of(parameters_cache_key(self.estimator.parameters))

    # -- run / resume ----------------------------------------------------------

    def run(
        self,
        name: str,
        array_size: int,
        config: Optional[NSGA2Config] = None,
        local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
        max_adc_bits: int = 8,
        min_height: int = 2,
        max_height: Optional[int] = None,
        stop_after_generations: Optional[int] = None,
        shards: Optional[int] = None,
        surrogate: str = "off",
        screen_fraction: float = 0.25,
    ) -> CampaignResult:
        """Start a new named campaign.

        ``stop_after_generations`` stops (with a committed checkpoint, so
        ``resume`` continues seamlessly) after that many generations in
        this call — the programmatic equivalent of killing the process.

        ``shards=N`` (N >= 2) pre-warms the store first: N worker
        processes split the feasible design grid into contiguous shards
        and commit their evaluations through the concurrent-writer-safe
        store, after which the optimisation loop runs entirely on warm
        cache hits.  Requires a file-backed store; results are
        bit-identical to the unsharded run (evaluation is pure and never
        consumes optimiser RNG).

        ``surrogate`` selects the evaluation mode: ``"off"`` (exact
        evaluation of every candidate, the historical behaviour, kept
        bit-identical), ``"screen"`` (a learned surrogate pre-filters
        offspring, sending only the most promising ``screen_fraction`` to
        the exact engine) or ``"refine"`` (screening plus a population
        warm-started from the store's cross-campaign Pareto set).
        """
        if self.store.get_campaign(name) is not None:
            raise StoreError(
                f"campaign {name!r} already exists; use resume() to continue"
            )
        if shards is not None and shards < 1:
            raise StoreError("shards must be at least 1")
        if surrogate not in ("off", "screen", "refine"):
            raise StoreError(
                f"unknown surrogate mode {surrogate!r}; "
                "expected 'off', 'screen' or 'refine'"
            )
        if not 0.0 < screen_fraction <= 1.0:
            raise StoreError("screen_fraction must be in (0, 1]")
        config = config or NSGA2Config()
        campaign_config = {
            **{key: getattr(config, key) for key in _NSGA2_FIELDS},
            "local_array_sizes": list(local_array_sizes),
            "max_adc_bits": max_adc_bits,
            "min_height": min_height,
            "max_height": max_height,
            "checkpoint_every": self.checkpoint_every,
            "shards": shards,
            "surrogate": surrogate,
            "screen_fraction": screen_fraction,
        }
        shard_stats: Dict = {}
        if shards is not None and shards > 1:
            shard_stats = prewarm_store(
                self.store,
                ShardSpace(
                    array_size=array_size,
                    local_array_sizes=tuple(sorted(set(local_array_sizes))),
                    max_adc_bits=max_adc_bits,
                    min_height=min_height,
                    max_height=max_height,
                ),
                self.estimator,
                shards,
            )
        self.store.create_campaign(
            name,
            array_size,
            campaign_config,
            self.params_digest,
            total_generations=config.generations,
        )
        return self._drive(
            name, array_size, campaign_config,
            checkpoint=None, stop_after=stop_after_generations, resumed=False,
            shard_stats=shard_stats,
        )

    def resume(
        self,
        name: str,
        stop_after_generations: Optional[int] = None,
    ) -> CampaignResult:
        """Continue a killed or interrupted campaign from its checkpoint.

        A campaign killed before its first checkpoint committed simply
        restarts from its (deterministic) seed; either way the final
        Pareto set matches the uninterrupted run bit-identically.
        """
        record = self.store.require_campaign(name)
        if record.status == "completed":
            raise StoreError(
                f"campaign {name!r} is already completed; "
                "query it with load_pareto()/query()"
            )
        if record.params_digest != self.params_digest:
            raise StoreError(
                f"campaign {name!r} was run with different model parameters "
                f"(stored digest {record.params_digest[:12]}..., "
                f"current {self.params_digest[:12]}...)"
            )
        checkpoint = self.store.latest_checkpoint(name)
        return self._drive(
            name, record.array_size, record.config,
            checkpoint=checkpoint, stop_after=stop_after_generations,
            resumed=True,
        )

    def _drive(
        self,
        name: str,
        array_size: int,
        campaign_config: Dict,
        checkpoint: Optional[Tuple[int, Dict]],
        stop_after: Optional[int],
        resumed: bool,
        shard_stats: Optional[Dict] = None,
    ) -> CampaignResult:
        config = NSGA2Config(
            **{key: campaign_config[key] for key in _NSGA2_FIELDS}
        )
        start = time.perf_counter()
        owns_engine = self.engine is None
        engine = self.engine or EvaluationEngine(
            config.backend, workers=config.workers, store=self.store
        )
        if shard_stats and not owns_engine:
            # A borrowed (session) engine hydrated before the shard
            # workers committed; pick their fresh rows up.
            engine.rehydrate()
        stats_baseline = engine.stats.snapshot()
        try:
            problem = ACIMDesignProblem(
                array_size,
                estimator=self.estimator,
                local_array_sizes=tuple(campaign_config["local_array_sizes"]),
                max_adc_bits=campaign_config["max_adc_bits"],
                min_height=campaign_config["min_height"],
                max_height=campaign_config["max_height"],
                engine=engine,
            )
            surrogate_mode = str(campaign_config.get("surrogate") or "off")
            screener = None
            if surrogate_mode != "off":
                from repro.engine.screen import ScreeningEvaluator

                # A fresh run seeds the surrogate's training set from the
                # store's accumulated evaluations; a resumed leg restores
                # the exact training-row set the checkpoint captured so
                # the screening decisions replay bit-identically.
                screener = SurrogateScreener(
                    ScreeningEvaluator(
                        engine,
                        self.estimator,
                        screen_fraction=float(
                            campaign_config.get("screen_fraction", 0.25)
                        ),
                        store=self.store,
                        seed_from_store=checkpoint is None,
                    )
                )
                problem.observer = screener.observe
            optimizer = NSGA2(problem, config, screener=screener)
            if checkpoint is not None:
                state = dict(checkpoint[1])
                screener_state = state.pop("screener", None)
                optimizer.restore_state(state)
                if screener is not None and screener_state:
                    screener.restore_state(
                        screener_state, engine, self.estimator
                    )
            else:
                seed_genomes = None
                if surrogate_mode == "refine":
                    seed_genomes = refine_seed_genomes(
                        self.store,
                        problem,
                        params_digest=self.params_digest,
                        limit=config.population_size,
                    )
                optimizer.initialize(seed_genomes=seed_genomes)
                self.store.save_checkpoint(
                    name, 0, _snapshot(optimizer, screener)
                )
            # The run-time cadence travels with the campaign so a resumed
            # leg keeps the commit cost profile the run was started with.
            checkpoint_every = int(
                campaign_config.get("checkpoint_every", self.checkpoint_every)
            )
            steps_this_call = 0
            generation_rows: List[Dict] = []
            generation_seconds = engine.metrics.histogram(
                "campaign.generation.seconds"
            )
            generation_counter = engine.metrics.counter(
                "campaign.generations"
            )
            while not optimizer.done:
                if stop_after is not None and steps_this_call >= stop_after:
                    break
                step_start = time.perf_counter()
                optimizer.step()
                generation_seconds.observe(time.perf_counter() - step_start)
                generation_counter.inc()
                steps_this_call += 1
                if screener is not None:
                    generation_rows.append({
                        "generation": optimizer.generation,
                        **screener.generation_snapshot([
                            ind.objectives
                            for ind in optimizer.result()
                            if ind.feasible
                        ]),
                    })
                stopping = (
                    stop_after is not None and steps_this_call >= stop_after
                )
                if (
                    optimizer.done
                    or stopping
                    or optimizer.generation % checkpoint_every == 0
                ):
                    self.store.save_checkpoint(
                        name, optimizer.generation,
                        _snapshot(optimizer, screener),
                    )
                if stopping:
                    break
            pareto_set: List[EvaluatedDesign] = []
            if optimizer.done:
                status = "completed"
                pareto_set = pareto_designs_from_population(
                    problem, optimizer.result()
                )
                self.store.save_pareto(
                    name, _pareto_entries(pareto_set, self.estimator)
                )
            else:
                status = "interrupted"
            engine.flush_store()
            runtime = time.perf_counter() - start
            self.store.update_campaign(
                name,
                status=status,
                generations_done=optimizer.generation,
                evaluations=optimizer.evaluations,
                add_runtime_seconds=runtime,
            )
            stats_delta = engine.stats.since(stats_baseline).as_dict()
            run_row = _run_metrics_row(
                status, steps_this_call, runtime, stats_delta
            )
            surrogate_summary: Dict[str, object] = {}
            if screener is not None:
                screener.persist()
                surrogate_summary = {
                    "mode": surrogate_mode,
                    "exact_candidates": screener.exact_candidates,
                    "screened_candidates": screener.screened_candidates,
                    "training_rows": screener.evaluator.training_rows,
                }
                # Surrogate fields ride along in the same run_metrics row
                # (attached only in surrogate modes so plain campaigns'
                # rows stay byte-identical to earlier releases).
                run_row["surrogate"] = surrogate_mode
                run_row["exact_evals"] = screener.exact_candidates
                run_row["screened_evals"] = screener.screened_candidates
                run_row["front_recall"] = (
                    generation_rows[-1]["front_recall"]
                    if generation_rows else 0.0
                )
                run_row["generation_metrics"] = generation_rows
            self.store.put_run_metrics(name, run_row)
            return CampaignResult(
                name=name,
                array_size=array_size,
                status=status,
                generations_done=optimizer.generation,
                total_generations=config.generations,
                evaluations=optimizer.evaluations,
                pareto_set=pareto_set,
                runtime_seconds=runtime,
                engine_stats=stats_delta,
                resumed=resumed,
                shard_stats=dict(shard_stats or {}),
                surrogate=surrogate_summary,
            )
        finally:
            if owns_engine:
                engine.close()
            else:
                engine.flush_store()

    # -- inspection ------------------------------------------------------------

    def list(self) -> List[CampaignRecord]:
        """Every campaign in the store, oldest first."""
        return self.store.list_campaigns()

    def pareto(self, name: str) -> List[StoredEvaluation]:
        """A completed campaign's recorded Pareto set."""
        self.store.require_campaign(name)
        return self.store.load_pareto(name)

    def query(
        self,
        criteria: Optional[DistillationCriteria] = None,
        pareto_only: bool = True,
        rank_by: str = "tops_per_watt",
        limit: Optional[int] = None,
    ) -> List[StoredEvaluation]:
        """Ranked design points across every campaign that fed the store."""
        return self.store.query(
            criteria=criteria,
            pareto_only=pareto_only,
            rank_by=rank_by,
            limit=limit,
        )


def _snapshot(optimizer: NSGA2, screener: Optional[SurrogateScreener]) -> Dict:
    """Checkpoint payload: optimiser state plus the screener's training set.

    The screener key is popped back out before
    :meth:`~repro.dse.nsga2.NSGA2.restore_state` sees the snapshot, so
    plain campaigns' checkpoints are unchanged and old checkpoints restore
    cleanly.
    """
    state = optimizer.state()
    if screener is not None:
        state["screener"] = screener.state()
    return state


def _pareto_entries(
    designs: Sequence[EvaluatedDesign], estimator: ACIMEstimator
) -> List[Tuple[Tuple, object]]:
    """(engine cache key, metrics) pairs of a Pareto set, for persistence."""
    params_key = parameters_cache_key(estimator.parameters)
    return [
        (spec_cache_key(design.spec, params_key=params_key), design.metrics)
        for design in designs
    ]


def _run_metrics_row(
    status: str, generations: int, runtime: float, stats_delta: Dict
) -> Dict:
    """The per-drive metric snapshot persisted into ``run_metrics``.

    One row per run/resume leg: throughput (generations/sec) and
    cache-economics (hit rate) of exactly this leg, so ``campaign list``
    can show how both trend across resumes.
    """
    cache_hits = int(stats_delta.get("cache_hits", 0))
    evaluations = int(stats_delta.get("evaluations", 0))
    lookups = cache_hits + evaluations
    return {
        "status": status,
        "generations": generations,
        "runtime_seconds": round(runtime, 6),
        "generations_per_second": (
            round(generations / runtime, 3) if runtime > 0 else 0.0
        ),
        "evaluations": evaluations,
        "cache_hits": cache_hits,
        "store_hits": int(stats_delta.get("store_hits", 0)),
        "cache_hit_rate": (
            round(cache_hits / lookups, 4) if lookups else 0.0
        ),
        "backend": stats_delta.get("backend"),
        "workers": stats_delta.get("workers"),
    }


def record_exploration(
    store: ResultStore,
    name: str,
    exploration,
    estimator: ACIMEstimator,
    config: NSGA2Config,
) -> None:
    """Record a finished (non-campaign) exploration as campaign metadata.

    The flow controller calls this so one-shot flow runs leave
    the same queryable trace as managed campaigns: a completed campaign row
    plus the Pareto set's evaluations.  Re-running the same flow replaces
    the row (upsert) rather than failing.
    """
    campaign_config = {
        **{key: getattr(config, key) for key in _NSGA2_FIELDS},
        "local_array_sizes": None,
        "max_adc_bits": None,
        "min_height": None,
        "max_height": None,
    }
    store.upsert_campaign(
        name,
        array_size=exploration.array_size,
        config=campaign_config,
        params_digest=params_digest_of(
            parameters_cache_key(estimator.parameters)
        ),
        status="completed",
        generations_done=exploration.generations,
        total_generations=config.generations,
        evaluations=exploration.evaluations,
        runtime_seconds=exploration.runtime_seconds,
    )
    store.save_pareto(name, _pareto_entries(exploration.pareto_set, estimator))
