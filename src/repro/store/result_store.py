"""SQLite-backed persistent store of evaluated ACIM design points.

:class:`ResultStore` turns the engine's in-memory memoization into a
durable, shared artifact: every evaluated ``(spec, model-params, tech)``
triple is content-addressed by a SHA-256 digest of its canonical engine
cache key and written to a single SQLite file.  Any later process —
another exploration campaign, a flow run, a query from the CLI — can
hydrate its evaluation cache from the store and serve past campaigns'
work as cache hits instead of re-computing it (the design-library
pattern: amortize once, serve many).

The same file also holds campaign state: named campaigns with their
configuration, per-generation NSGA-II checkpoints (population + RNG
state) and the final Pareto sets, so a killed ``campaign run`` resumes
bit-identically from its last committed generation.

Durability model:

* every write happens inside one ``BEGIN IMMEDIATE`` transaction, so a
  killed process never leaves a partially-applied batch or checkpoint;
* concurrent writers (two processes sharing one store file) serialize on
  SQLite's file lock with a generous busy timeout;
* the schema carries an explicit version and the store refuses to open a
  file written by an incompatible revision instead of misreading it.

Evaluation rows are immutable — a content address identifies a pure
function application, so the first write wins and re-writes are no-ops.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.spec import ACIMDesignSpec
from repro.errors import StoreError
from repro.model.estimator import ACIMMetrics
from repro.obs import get_tracer

#: Version of the on-disk schema; bumped on incompatible layout changes.
#: v2 added the ``template_index`` table and the ``(stage, created_at)``
#: artifact index; v3 adds the ``surrogates`` table, the
#: ``(params_digest, created_at)`` covering index surrogate training
#: scans ride, and one ``(metric, spec)`` rank index per query metric
#: (all purely additive, so older files migrate in place).
SCHEMA_VERSION = 3

#: Older schema versions this revision upgrades in place on open.  Every
#: v2/v3 addition is new tables/indexes created by the idempotent DDL, so
#: migrating an older file is just running the DDL and re-stamping.
_MIGRATABLE_VERSIONS = (1, 2)

#: Metric columns of the ``evaluations`` table, in ACIMMetrics field order.
_METRIC_FIELDS = (
    "snr_db",
    "snr_total_db",
    "tops",
    "macs_per_second",
    "energy_per_mac",
    "tops_per_watt",
    "area_f2_per_bit",
    "total_area_um2",
)

#: ``query(rank_by=...)`` metrics and whether larger values rank first.
RANK_METRICS: Dict[str, bool] = {
    "snr_db": True,
    "snr_total_db": True,
    "tops": True,
    "macs_per_second": True,
    "tops_per_watt": True,
    "energy_per_mac": False,
    "area_f2_per_bit": False,
    "total_area_um2": False,
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS param_bundles (
    params_digest TEXT PRIMARY KEY,
    params_json   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS evaluations (
    key_digest    TEXT PRIMARY KEY,
    height        INTEGER NOT NULL,
    width         INTEGER NOT NULL,
    local         INTEGER NOT NULL,
    adc_bits      INTEGER NOT NULL,
    params_digest TEXT NOT NULL REFERENCES param_bundles(params_digest),
    technology    TEXT,
    snr_db REAL NOT NULL, snr_total_db REAL NOT NULL,
    tops REAL NOT NULL, macs_per_second REAL NOT NULL,
    energy_per_mac REAL NOT NULL, tops_per_watt REAL NOT NULL,
    area_f2_per_bit REAL NOT NULL, total_area_um2 REAL NOT NULL,
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_evaluations_params
    ON evaluations(params_digest);
CREATE TABLE IF NOT EXISTS campaigns (
    name              TEXT PRIMARY KEY,
    array_size        INTEGER NOT NULL,
    status            TEXT NOT NULL,
    config_json       TEXT NOT NULL,
    params_digest     TEXT NOT NULL,
    generations_done  INTEGER NOT NULL DEFAULT 0,
    total_generations INTEGER NOT NULL,
    evaluations       INTEGER NOT NULL DEFAULT 0,
    runtime_seconds   REAL NOT NULL DEFAULT 0.0,
    created_at        REAL NOT NULL,
    updated_at        REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    campaign   TEXT NOT NULL REFERENCES campaigns(name),
    generation INTEGER NOT NULL,
    state_json TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (campaign, generation)
);
CREATE TABLE IF NOT EXISTS campaign_results (
    campaign   TEXT NOT NULL REFERENCES campaigns(name),
    position   INTEGER NOT NULL,
    key_digest TEXT NOT NULL REFERENCES evaluations(key_digest),
    PRIMARY KEY (campaign, position)
);
CREATE TABLE IF NOT EXISTS artifacts (
    artifact_digest TEXT PRIMARY KEY,
    stage           TEXT NOT NULL,
    key_json        TEXT NOT NULL,
    payload_json    TEXT NOT NULL,
    created_at      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_artifacts_stage ON artifacts(stage);
CREATE INDEX IF NOT EXISTS idx_artifacts_stage_created
    ON artifacts(stage, created_at);
CREATE TABLE IF NOT EXISTS template_index (
    kind            TEXT NOT NULL,
    family_digest   TEXT NOT NULL,
    params_json     TEXT NOT NULL,
    artifact_digest TEXT NOT NULL REFERENCES artifacts(artifact_digest),
    created_at      REAL NOT NULL,
    PRIMARY KEY (kind, family_digest, params_json)
);
CREATE INDEX IF NOT EXISTS idx_template_index_family
    ON template_index(family_digest);
CREATE TABLE IF NOT EXISTS run_metrics (
    campaign     TEXT NOT NULL REFERENCES campaigns(name),
    run_index    INTEGER NOT NULL,
    created_at   REAL NOT NULL,
    metrics_json TEXT NOT NULL,
    PRIMARY KEY (campaign, run_index)
);
CREATE INDEX IF NOT EXISTS idx_evaluations_params_created
    ON evaluations(params_digest, created_at);
CREATE TABLE IF NOT EXISTS surrogates (
    params_digest        TEXT NOT NULL,
    version              INTEGER NOT NULL,
    training_rows        INTEGER NOT NULL,
    training_fingerprint TEXT NOT NULL,
    model_json           TEXT NOT NULL,
    created_at           REAL NOT NULL,
    PRIMARY KEY (params_digest, version)
);
""" + "".join(
    f"CREATE INDEX IF NOT EXISTS idx_eval_rank_{metric}\n"
    f"    ON evaluations({metric}, height, width, local, adc_bits);\n"
    for metric in RANK_METRICS
)


# -- canonical keys and digests ----------------------------------------------


def _to_jsonable(value):
    """Tuples become lists recursively; scalars pass through."""
    if isinstance(value, (tuple, list)):
        return [_to_jsonable(item) for item in value]
    return value


def _from_jsonable(value):
    """Inverse of :func:`_to_jsonable`: lists become tuples recursively."""
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


def canonical_key(key: Tuple) -> str:
    """Canonical JSON text of an engine cache key (or any nested tuple).

    Python's shortest-repr float serialization round-trips exactly, so two
    equal keys always canonicalize to the same text and a canonical text
    deserializes back to the original key via :func:`_from_jsonable`.
    """
    return json.dumps(_to_jsonable(key), separators=(",", ":"))


def key_digest(key: Tuple) -> str:
    """Content address of one evaluation: SHA-256 of the canonical key."""
    return hashlib.sha256(canonical_key(key).encode("utf-8")).hexdigest()


def params_digest_of(params_key: Tuple) -> str:
    """Content address of a flattened model-parameters bundle."""
    return hashlib.sha256(
        canonical_key(params_key).encode("utf-8")
    ).hexdigest()


# -- record types -------------------------------------------------------------


@dataclass(frozen=True)
class StoredEvaluation:
    """One evaluated design point read back from the store.

    Attributes:
        metrics: the full metrics record (``metrics.spec`` is the design).
        key_digest: content address of the evaluation.
        params_digest: content address of the model-parameter bundle.
        technology: technology tag of the cache key (usually ``None``).
        created_at: UNIX timestamp of the first write.
    """

    metrics: ACIMMetrics
    key_digest: str
    params_digest: str
    technology: Optional[str]
    created_at: float

    @property
    def spec(self) -> ACIMDesignSpec:
        """The evaluated design point."""
        return self.metrics.spec

    def as_dict(self) -> dict:
        """Flat dictionary (report tables, CSV/JSON export)."""
        return self.metrics.as_dict()


@dataclass(frozen=True)
class CampaignRecord:
    """Metadata row of one named campaign.

    Attributes:
        name: unique campaign name (the resume handle).
        array_size: explored array size H * W.
        status: ``running`` / ``interrupted`` / ``completed``.
        config: NSGA-II + problem configuration as a plain dictionary.
        params_digest: digest of the model parameters the campaign uses.
        generations_done: committed generations so far.
        total_generations: configured generation budget.
        evaluations: objective evaluations consumed so far.
        runtime_seconds: accumulated wall-clock across run/resume calls.
        created_at / updated_at: UNIX timestamps.
    """

    name: str
    array_size: int
    status: str
    config: Dict
    params_digest: str
    generations_done: int
    total_generations: int
    evaluations: int
    runtime_seconds: float
    created_at: float
    updated_at: float

    def as_dict(self) -> dict:
        """Flat dictionary for the ``campaign list`` report table."""
        return {
            "name": self.name,
            "array_size": self.array_size,
            "status": self.status,
            "generations": f"{self.generations_done}/{self.total_generations}",
            "evaluations": self.evaluations,
            "runtime_s": round(self.runtime_seconds, 2),
        }


# -- the store ----------------------------------------------------------------


class ResultStore:
    """Persistent, content-addressed store of evaluated design points.

    Args:
        path: SQLite file (parent directories are created); pass
            ``":memory:"`` for an ephemeral in-process store.
        timeout: seconds a writer waits on another process's transaction
            before giving up (SQLite busy timeout).
        metrics: optional :class:`~repro.obs.MetricsRegistry` the store
            records flush/query timings into (the session attaches its
            registry here).
    """

    def __init__(
        self, path: Union[str, Path], timeout: float = 30.0, metrics=None
    ) -> None:
        self.path = str(path)
        self.metrics = metrics
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                self.path, timeout=timeout, check_same_thread=False,
                isolation_level=None,
            )
        except sqlite3.Error as error:
            raise StoreError(f"cannot open result store {self.path}: {error}")
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(f"PRAGMA busy_timeout = {int(timeout * 1000)}")
        self._initialize_schema()

    def _initialize_schema(self) -> None:
        # executescript() autocommits, so the (idempotent) DDL runs outside
        # the explicit transaction; only the version check/stamp is atomic.
        try:
            self._conn.executescript(_SCHEMA)
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot initialize result store {self.path}: {error}"
            )
        with self._write() as conn:
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
            elif int(row["value"]) in _MIGRATABLE_VERSIONS:
                # The DDL above already created every object the newer
                # schema adds; re-stamp the version in the same atomic
                # transaction as the check.
                conn.execute(
                    "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row["value"]) != SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.path} has schema version {row['value']}, "
                    f"this revision supports version {SCHEMA_VERSION}"
                )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close the SQLite connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def _write(self):
        """One atomic write transaction (``BEGIN IMMEDIATE`` ... commit).

        ``BEGIN IMMEDIATE`` takes the write lock up front so two processes
        flushing into the same store serialize cleanly instead of failing
        mid-transaction on a lock upgrade.
        """
        with self._lock:
            if self._conn is None:
                raise StoreError(f"result store {self.path} is closed")
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                yield self._conn
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._rollback()
                raise StoreError(f"store write failed: {error}")
            except BaseException:
                self._rollback()
                raise

    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass  # BEGIN itself failed; there is no transaction to roll back

    def _read(self):
        with self._lock:
            if self._conn is None:
                raise StoreError(f"result store {self.path} is closed")
            return self._conn

    # -- evaluations -----------------------------------------------------------

    def put(self, key: Tuple, metrics: ACIMMetrics) -> int:
        """Persist one evaluation; returns 1 if it was new, else 0."""
        return self.put_many([(key, metrics)])

    def put_many(
        self, entries: Sequence[Tuple[Tuple, ACIMMetrics]]
    ) -> int:
        """Persist a batch of ``(engine cache key, metrics)`` pairs.

        The whole batch commits atomically; already-present content
        addresses are skipped (evaluations are immutable).  Returns the
        number of evaluations actually added.
        """
        if not entries:
            return 0
        started = time.perf_counter()
        now = time.time()
        added = 0
        with get_tracer().span("store.flush", rows=len(entries)):
            with self._write() as conn:
                for key, metrics in entries:
                    spec_tuple, params_key, technology = key
                    params_digest = params_digest_of(params_key)
                    conn.execute(
                        "INSERT OR IGNORE INTO param_bundles "
                        "(params_digest, params_json) VALUES (?, ?)",
                        (params_digest, canonical_key(params_key)),
                    )
                    before = conn.total_changes
                    conn.execute(
                        "INSERT OR IGNORE INTO evaluations ("
                        "  key_digest, height, width, local, adc_bits,"
                        "  params_digest, technology,"
                        "  snr_db, snr_total_db, tops, macs_per_second,"
                        "  energy_per_mac, tops_per_watt, area_f2_per_bit,"
                        "  total_area_um2, created_at"
                        ") VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            key_digest(key),
                            *spec_tuple,
                            params_digest,
                            technology,
                            *(getattr(metrics, field) for field in _METRIC_FIELDS),
                            now,
                        ),
                    )
                    added += conn.total_changes - before
        if self.metrics is not None:
            self.metrics.counter("store.put.rows").add(added)
            self.metrics.histogram("store.put.seconds").observe(
                time.perf_counter() - started
            )
        return added

    def get(self, key: Tuple) -> Optional[ACIMMetrics]:
        """Look one evaluation up by its engine cache key."""
        row = self._read().execute(
            "SELECT * FROM evaluations WHERE key_digest = ?",
            (key_digest(key),),
        ).fetchone()
        return None if row is None else _metrics_from_row(row)

    def evaluation_count(self) -> int:
        """Number of stored evaluations."""
        return self._read().execute(
            "SELECT COUNT(*) AS n FROM evaluations"
        ).fetchone()["n"]

    def __len__(self) -> int:
        return self.evaluation_count()

    def hydrate(self, cache, limit: Optional[int] = None) -> List[Tuple]:
        """Load stored evaluations into an evaluation cache (warm start).

        The most recently stored evaluations are loaded first, bounded by
        ``limit`` (default: the cache's capacity) so hydration never
        thrashes a small LRU.  Returns the hydrated cache keys; the engine
        keeps them to attribute later cache hits to the persistent store.
        """
        if limit is None:
            limit = getattr(cache, "max_size", None)
        query = (
            "SELECT e.*, p.params_json FROM evaluations e "
            "JOIN param_bundles p ON p.params_digest = e.params_digest "
            "ORDER BY e.created_at DESC, e.key_digest"
        )
        arguments: Tuple = ()
        if limit is not None:
            query += " LIMIT ?"
            arguments = (int(limit),)
        keys: List[Tuple] = []
        rows = self._read().execute(query, arguments).fetchall()
        # The LIMIT selects the newest rows, but they are inserted oldest
        # first so the newest end up most-recently-used in the LRU.
        for row in reversed(rows):
            params_key = _from_jsonable(json.loads(row["params_json"]))
            key = (
                (row["height"], row["width"], row["local"], row["adc_bits"]),
                params_key,
                row["technology"],
            )
            cache.put(key, _metrics_from_row(row))
            keys.append(key)
        return keys

    # -- physical-pipeline artifacts -------------------------------------------

    def put_artifact(self, digest: str, stage: str, key, payload: dict) -> int:
        """Persist one content-addressed pipeline artifact.

        ``key`` and ``payload`` must be JSON-serializable; like
        evaluations, artifacts are immutable — a digest identifies a pure
        function application, so the first write wins and re-writes are
        no-ops.  Returns 1 when the artifact was new, else 0.
        """
        now = time.time()
        with self._write() as conn:
            before = conn.total_changes
            conn.execute(
                "INSERT OR IGNORE INTO artifacts "
                "(artifact_digest, stage, key_json, payload_json, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (digest, stage, json.dumps(key, sort_keys=True),
                 json.dumps(payload), now),
            )
            return conn.total_changes - before

    def get_artifact(self, digest: str) -> Optional[dict]:
        """Look one artifact payload up by its content address."""
        row = self._read().execute(
            "SELECT payload_json FROM artifacts WHERE artifact_digest = ?",
            (digest,),
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row["payload_json"])
        except ValueError as error:
            raise StoreError(f"corrupt artifact {digest}: {error}")

    def list_artifacts(self, stage: Optional[str] = None) -> List[dict]:
        """Artifact metadata rows in insertion order, optionally per stage.

        Each row carries the digest, stage, decoded key, payload size and
        creation time — enough for the ``repro library macros`` listing
        without decoding whole layout payloads.  Ordering is by rowid
        (true insertion order) rather than ``created_at``, whose
        one-second-ish resolution made same-instant writes come back in
        digest order — and therefore in a *different* order depending on
        whether a stage filter was applied.  ``created_at`` is still
        returned on every row.
        """
        sql = (
            "SELECT artifact_digest, stage, key_json, "
            "LENGTH(payload_json) AS payload_bytes, created_at FROM artifacts"
        )
        arguments: Tuple = ()
        if stage is not None:
            sql += " WHERE stage = ?"
            arguments = (stage,)
        sql += " ORDER BY rowid"
        rows = []
        for row in self._read().execute(sql, arguments):
            try:
                key = json.loads(row["key_json"])
            except ValueError as error:
                raise StoreError(
                    f"corrupt artifact key {row['artifact_digest']}: {error}"
                )
            rows.append({
                "digest": row["artifact_digest"],
                "stage": row["stage"],
                "key": key,
                "payload_bytes": row["payload_bytes"],
                "created_at": row["created_at"],
            })
        return rows

    def put_template_entry(
        self, kind: str, family_digest: str, params: Dict, artifact_digest: str
    ) -> int:
        """Index one solved macro for nearest-neighbour template lookup.

        The row maps ``(kind, family digest, structural-parameter
        vector)`` to the artifact holding the solved macro.  Like
        artifacts, entries are immutable: a parameter vector of a family
        identifies one exact solve, so the first write wins and
        concurrent writers registering the same row are no-ops.  Returns
        1 when the entry was new, else 0.
        """
        with self._write() as conn:
            before = conn.total_changes
            conn.execute(
                "INSERT OR IGNORE INTO template_index "
                "(kind, family_digest, params_json, artifact_digest, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (kind, family_digest, json.dumps(params, sort_keys=True),
                 artifact_digest, time.time()),
            )
            return conn.total_changes - before

    def list_template_entries(
        self,
        kind: Optional[str] = None,
        family_digest: Optional[str] = None,
    ) -> List[dict]:
        """Template-index rows in insertion order, optionally filtered.

        Each row carries the kind, family digest, decoded parameter
        vector and backing artifact digest; the macro library ranks them
        by edit cost to pick the nearest solved neighbour.
        """
        sql = (
            "SELECT kind, family_digest, params_json, artifact_digest, "
            "created_at FROM template_index"
        )
        clauses: List[str] = []
        arguments: List = []
        if kind is not None:
            clauses.append("kind = ?")
            arguments.append(kind)
        if family_digest is not None:
            clauses.append("family_digest = ?")
            arguments.append(family_digest)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY rowid"
        rows = []
        for row in self._read().execute(sql, arguments):
            try:
                params = json.loads(row["params_json"])
            except ValueError as error:
                raise StoreError(
                    f"corrupt template-index row "
                    f"{row['kind']}/{row['artifact_digest']}: {error}"
                )
            rows.append({
                "kind": row["kind"],
                "family_digest": row["family_digest"],
                "params": params,
                "artifact_digest": row["artifact_digest"],
                "created_at": row["created_at"],
            })
        return rows

    def template_entry_count(self) -> int:
        """Number of template-index rows."""
        return self._read().execute(
            "SELECT COUNT(*) AS n FROM template_index"
        ).fetchone()["n"]

    def artifact_count(self, stage: Optional[str] = None) -> int:
        """Number of stored artifacts (of one stage, or overall)."""
        if stage is None:
            row = self._read().execute(
                "SELECT COUNT(*) AS n FROM artifacts"
            ).fetchone()
        else:
            row = self._read().execute(
                "SELECT COUNT(*) AS n FROM artifacts WHERE stage = ?",
                (stage,),
            ).fetchone()
        return row["n"]

    # -- query ----------------------------------------------------------------

    def query(
        self,
        criteria=None,
        pareto_only: bool = True,
        rank_by: str = "tops_per_watt",
        limit: Optional[int] = None,
        offset: int = 0,
        params_digest: Optional[str] = None,
    ) -> List[StoredEvaluation]:
        """Ranked design points satisfying the given constraints.

        Args:
            criteria: a :class:`~repro.dse.distill.DistillationCriteria`
                (or any object with ``accepts(design) -> bool``); ``None``
                keeps everything.
            pareto_only: keep only points non-dominated on the Equation-12
                objective vector across the whole store (i.e. across every
                campaign that fed it).
            rank_by: metric to order by (see :data:`RANK_METRICS`).
            limit: page size — truncate the ranked list.
            offset: skip this many ranked entries first (pagination; the
                ordering is total — rank metric then spec tuple — so
                pages never overlap or skip entries between calls against
                an unchanged store).
            params_digest: restrict to one model-parameter bundle.
        """
        entries, _total = self.query_page(
            criteria=criteria,
            pareto_only=pareto_only,
            rank_by=rank_by,
            limit=limit,
            offset=offset,
            params_digest=params_digest,
        )
        return entries

    def query_page(
        self,
        criteria=None,
        pareto_only: bool = True,
        rank_by: str = "tops_per_watt",
        limit: Optional[int] = None,
        offset: int = 0,
        params_digest: Optional[str] = None,
    ) -> Tuple[List[StoredEvaluation], int]:
        """Like :meth:`query`, returning ``(page, total)``.

        ``total`` counts every entry matching the criteria/Pareto filter
        *before* pagination, so tenant-facing consumers can report page
        ``offset``..``offset + len(page)`` of ``total``.
        """
        if rank_by not in RANK_METRICS:
            raise StoreError(
                f"unknown rank metric {rank_by!r}; "
                f"expected one of {sorted(RANK_METRICS)}"
            )
        started = time.perf_counter()
        with get_tracer().span("store.query", rank_by=rank_by):
            descending = RANK_METRICS[rank_by]
            if criteria is None and not pareto_only:
                # One-pass SQL fast path: the ordering below is exactly
                # the Python sort key (rank metric, then the full spec
                # tuple) — ``reverse=True`` flips the tie-break too, so
                # every ORDER BY term shares one direction and the
                # ``idx_eval_rank_<metric>`` covering index satisfies it
                # without a temp B-tree (asserted via EXPLAIN QUERY PLAN
                # in the test suite).
                entries, total = self._query_page_sql(
                    rank_by, descending, limit, offset, params_digest
                )
            else:
                sql = "SELECT * FROM evaluations"
                arguments: Tuple = ()
                if params_digest is not None:
                    sql += " WHERE params_digest = ?"
                    arguments = (params_digest,)
                entries = [
                    _evaluation_from_row(row)
                    for row in self._read().execute(sql, arguments)
                ]
                if criteria is not None:
                    entries = [
                        entry for entry in entries if criteria.accepts(entry)
                    ]
                if pareto_only and entries:
                    from repro.dse.pareto import pareto_front

                    front = pareto_front(
                        [entry.metrics.objectives() for entry in entries]
                    )
                    entries = [entries[i] for i in front]
                entries.sort(
                    key=lambda entry: (
                        getattr(entry.metrics, rank_by),
                        entry.spec.as_tuple(),
                    ),
                    reverse=descending,
                )
                total = len(entries)
                if offset:
                    entries = entries[max(0, int(offset)):]
                if limit is not None:
                    entries = entries[: max(0, int(limit))]
        if self.metrics is not None:
            self.metrics.counter("store.query.rows").add(len(entries))
            self.metrics.histogram("store.query.seconds").observe(
                time.perf_counter() - started
            )
        return entries, total

    def _query_page_sql(
        self,
        rank_by: str,
        descending: bool,
        limit: Optional[int],
        offset: int,
        params_digest: Optional[str],
    ) -> Tuple[List[StoredEvaluation], int]:
        """Index-ordered page straight out of SQLite (no Python re-sort)."""
        conn = self._read()
        where = ""
        arguments: Tuple = ()
        if params_digest is not None:
            where = " WHERE params_digest = ?"
            arguments = (params_digest,)
        total = conn.execute(
            f"SELECT COUNT(*) AS n FROM evaluations{where}", arguments
        ).fetchone()["n"]
        direction = "DESC" if descending else "ASC"
        order = ", ".join(
            f"{column} {direction}"
            for column in (rank_by, "height", "width", "local", "adc_bits")
        )
        page_limit = -1 if limit is None else max(0, int(limit))
        entries = [
            _evaluation_from_row(row)
            for row in conn.execute(
                f"SELECT * FROM evaluations{where} ORDER BY {order} "
                "LIMIT ? OFFSET ?",
                (*arguments, page_limit, max(0, int(offset))),
            )
        ]
        return entries, total

    # -- surrogate models ------------------------------------------------------

    def training_rows(
        self, params_digest: str, limit: Optional[int] = None
    ) -> List[Tuple[Tuple[int, int, int, int], Tuple[float, ...]]]:
        """``(spec tuple, metric tuple)`` training pairs, oldest first.

        The surrogate training scan: rides the
        ``idx_evaluations_params_created`` covering index, so warming a
        screener from a million-row store never re-sorts in Python.
        """
        sql = (
            "SELECT height, width, local, adc_bits, "
            + ", ".join(_METRIC_FIELDS)
            + " FROM evaluations WHERE params_digest = ? ORDER BY created_at"
        )
        arguments: Tuple = (params_digest,)
        if limit is not None:
            sql += " LIMIT ?"
            arguments = (params_digest, int(limit))
        return [
            (
                (row["height"], row["width"], row["local"], row["adc_bits"]),
                tuple(row[field] for field in _METRIC_FIELDS),
            )
            for row in self._read().execute(sql, arguments)
        ]

    def put_surrogate(
        self,
        params_digest: str,
        training_rows: int,
        fingerprint: str,
        model: Dict,
    ) -> int:
        """Version a fitted surrogate model in; returns its version.

        Models are pure functions of their training set, so re-persisting
        the latest fingerprint is a no-op returning the existing version;
        a changed fingerprint (the training set grew or shifted) appends
        the next version — readers always take the latest and validate
        its fingerprint against their own training rows.
        """
        payload = json.dumps(model, sort_keys=True)
        with self._write() as conn:
            row = conn.execute(
                "SELECT version, training_fingerprint FROM surrogates "
                "WHERE params_digest = ? ORDER BY version DESC LIMIT 1",
                (params_digest,),
            ).fetchone()
            if row is not None and row["training_fingerprint"] == fingerprint:
                return int(row["version"])
            version = 1 if row is None else int(row["version"]) + 1
            conn.execute(
                "INSERT INTO surrogates (params_digest, version, "
                "training_rows, training_fingerprint, model_json, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (params_digest, version, int(training_rows), fingerprint,
                 payload, time.time()),
            )
        return version

    def latest_surrogate(self, params_digest: str) -> Optional[Dict]:
        """The newest persisted surrogate of one parameter bundle."""
        row = self._read().execute(
            "SELECT * FROM surrogates WHERE params_digest = ? "
            "ORDER BY version DESC LIMIT 1",
            (params_digest,),
        ).fetchone()
        if row is None:
            return None
        try:
            model = json.loads(row["model_json"])
        except ValueError as error:
            raise StoreError(
                f"corrupt surrogate for params {params_digest[:12]}... "
                f"(version {row['version']}): {error}"
            )
        return {
            "params_digest": row["params_digest"],
            "version": int(row["version"]),
            "training_rows": int(row["training_rows"]),
            "training_fingerprint": row["training_fingerprint"],
            "model": model,
            "created_at": float(row["created_at"]),
        }

    def surrogate_count(self) -> int:
        """Number of persisted surrogate model versions."""
        return self._read().execute(
            "SELECT COUNT(*) AS n FROM surrogates"
        ).fetchone()["n"]

    # -- campaigns -------------------------------------------------------------

    def create_campaign(
        self,
        name: str,
        array_size: int,
        config: Dict,
        params_digest: str,
        total_generations: int,
    ) -> None:
        """Register a new campaign; fails if the name is taken."""
        now = time.time()
        try:
            with self._write() as conn:
                conn.execute(
                    "INSERT INTO campaigns ("
                    "  name, array_size, status, config_json, params_digest,"
                    "  generations_done, total_generations, evaluations,"
                    "  runtime_seconds, created_at, updated_at"
                    ") VALUES (?, ?, 'running', ?, ?, 0, ?, 0, 0.0, ?, ?)",
                    (name, array_size, json.dumps(config, sort_keys=True),
                     params_digest, total_generations, now, now),
                )
        except StoreError as error:
            if "UNIQUE" in str(error):
                raise StoreError(
                    f"campaign {name!r} already exists in {self.path}; "
                    "use 'campaign resume' to continue it"
                )
            raise

    def get_campaign(self, name: str) -> Optional[CampaignRecord]:
        """Look a campaign up by name."""
        row = self._read().execute(
            "SELECT * FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        return None if row is None else _campaign_from_row(row)

    def require_campaign(self, name: str) -> CampaignRecord:
        """Like :meth:`get_campaign` but raising when the name is unknown."""
        record = self.get_campaign(name)
        if record is None:
            known = ", ".join(r.name for r in self.list_campaigns()) or "none"
            raise StoreError(
                f"no campaign {name!r} in {self.path} (known: {known})"
            )
        return record

    def list_campaigns(self) -> List[CampaignRecord]:
        """Every campaign, oldest first."""
        return [
            _campaign_from_row(row)
            for row in self._read().execute(
                "SELECT * FROM campaigns ORDER BY created_at, name"
            )
        ]

    def update_campaign(
        self,
        name: str,
        status: Optional[str] = None,
        generations_done: Optional[int] = None,
        evaluations: Optional[int] = None,
        add_runtime_seconds: float = 0.0,
    ) -> None:
        """Update a campaign's progress columns (only the given ones)."""
        assignments = ["updated_at = ?"]
        arguments: List = [time.time()]
        if status is not None:
            assignments.append("status = ?")
            arguments.append(status)
        if generations_done is not None:
            assignments.append("generations_done = ?")
            arguments.append(generations_done)
        if evaluations is not None:
            assignments.append("evaluations = ?")
            arguments.append(evaluations)
        if add_runtime_seconds:
            assignments.append("runtime_seconds = runtime_seconds + ?")
            arguments.append(add_runtime_seconds)
        arguments.append(name)
        with self._write() as conn:
            cursor = conn.execute(
                f"UPDATE campaigns SET {', '.join(assignments)} "
                "WHERE name = ?",
                arguments,
            )
            if cursor.rowcount == 0:
                raise StoreError(f"no campaign {name!r} in {self.path}")

    def upsert_campaign(
        self,
        name: str,
        array_size: int,
        config: Dict,
        params_digest: str,
        status: str,
        generations_done: int,
        total_generations: int,
        evaluations: int,
        runtime_seconds: float,
    ) -> None:
        """Insert-or-replace a whole campaign row (flow-result recording)."""
        now = time.time()
        with self._write() as conn:
            conn.execute(
                "INSERT INTO campaigns ("
                "  name, array_size, status, config_json, params_digest,"
                "  generations_done, total_generations, evaluations,"
                "  runtime_seconds, created_at, updated_at"
                ") VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET"
                "  array_size = excluded.array_size,"
                "  status = excluded.status,"
                "  config_json = excluded.config_json,"
                "  params_digest = excluded.params_digest,"
                "  generations_done = excluded.generations_done,"
                "  total_generations = excluded.total_generations,"
                "  evaluations = excluded.evaluations,"
                "  runtime_seconds = excluded.runtime_seconds,"
                "  updated_at = excluded.updated_at",
                (name, array_size, status,
                 json.dumps(config, sort_keys=True), params_digest,
                 generations_done, total_generations, evaluations,
                 runtime_seconds, now, now),
            )

    # -- checkpoints -----------------------------------------------------------

    def save_checkpoint(
        self, name: str, generation: int, state: Dict
    ) -> None:
        """Commit one generation snapshot atomically.

        Any stale snapshots at or beyond ``generation`` (left behind by an
        earlier timeline that was resumed from an older checkpoint) are
        dropped in the same transaction, so the latest checkpoint is always
        the end of a single consistent history.  The campaign's progress
        columns advance in the same transaction, so ``campaign list`` stays
        honest even for a process killed right after the commit.
        """
        now = time.time()
        with self._write() as conn:
            conn.execute(
                "DELETE FROM checkpoints WHERE campaign = ? "
                "AND generation >= ?",
                (name, generation),
            )
            conn.execute(
                "INSERT INTO checkpoints "
                "(campaign, generation, state_json, created_at) "
                "VALUES (?, ?, ?, ?)",
                (name, generation, json.dumps(state), now),
            )
            conn.execute(
                "UPDATE campaigns SET generations_done = ?, evaluations = ?, "
                "updated_at = ? WHERE name = ?",
                (generation, int(state.get("evaluations", 0)), now, name),
            )

    def latest_checkpoint(
        self, name: str
    ) -> Optional[Tuple[int, Dict]]:
        """The newest committed ``(generation, state)`` of a campaign."""
        row = self._read().execute(
            "SELECT generation, state_json FROM checkpoints "
            "WHERE campaign = ? ORDER BY generation DESC LIMIT 1",
            (name,),
        ).fetchone()
        if row is None:
            return None
        try:
            state = json.loads(row["state_json"])
        except ValueError as error:
            raise StoreError(
                f"corrupt checkpoint for campaign {name!r} "
                f"(generation {row['generation']}): {error}"
            )
        return int(row["generation"]), state

    def checkpoint_count(self, name: Optional[str] = None) -> int:
        """Number of committed checkpoints (of one campaign, or overall)."""
        if name is None:
            row = self._read().execute(
                "SELECT COUNT(*) AS n FROM checkpoints"
            ).fetchone()
        else:
            row = self._read().execute(
                "SELECT COUNT(*) AS n FROM checkpoints WHERE campaign = ?",
                (name,),
            ).fetchone()
        return row["n"]

    # -- campaign results ------------------------------------------------------

    def save_pareto(
        self, name: str, entries: Sequence[Tuple[Tuple, ACIMMetrics]]
    ) -> None:
        """Record a campaign's final Pareto set (and persist its points)."""
        self.put_many(entries)
        with self._write() as conn:
            conn.execute(
                "DELETE FROM campaign_results WHERE campaign = ?", (name,)
            )
            conn.executemany(
                "INSERT INTO campaign_results (campaign, position, key_digest) "
                "VALUES (?, ?, ?)",
                [
                    (name, position, key_digest(key))
                    for position, (key, _metrics) in enumerate(entries)
                ],
            )

    def load_pareto(self, name: str) -> List[StoredEvaluation]:
        """A campaign's recorded Pareto set, in its recorded order."""
        return [
            _evaluation_from_row(row)
            for row in self._read().execute(
                "SELECT e.* FROM campaign_results r "
                "JOIN evaluations e ON e.key_digest = r.key_digest "
                "WHERE r.campaign = ? ORDER BY r.position",
                (name,),
            )
        ]

    # -- per-run metric snapshots ----------------------------------------------

    def put_run_metrics(self, name: str, metrics: Dict) -> int:
        """Append one campaign-run metric snapshot; returns its run index.

        Each :meth:`~repro.store.campaign._CampaignManagerCore` drive —
        initial run or resume — appends one row, so the trend of
        generations/sec and cache-hit rate across resumes is queryable
        (``campaign list`` renders it).
        """
        with self._write() as conn:
            row = conn.execute(
                "SELECT COALESCE(MAX(run_index), -1) + 1 AS next "
                "FROM run_metrics WHERE campaign = ?",
                (name,),
            ).fetchone()
            run_index = int(row["next"])
            conn.execute(
                "INSERT INTO run_metrics "
                "(campaign, run_index, created_at, metrics_json) "
                "VALUES (?, ?, ?, ?)",
                (name, run_index, time.time(),
                 json.dumps(metrics, sort_keys=True)),
            )
        return run_index

    def list_run_metrics(self, name: Optional[str] = None) -> List[Dict]:
        """Recorded per-run metric snapshots, oldest first.

        Each row is ``{"campaign", "run_index", "created_at",
        "metrics"}`` with ``metrics`` decoded back to a dictionary.
        """
        sql = (
            "SELECT campaign, run_index, created_at, metrics_json "
            "FROM run_metrics"
        )
        arguments: Tuple = ()
        if name is not None:
            sql += " WHERE campaign = ?"
            arguments = (name,)
        sql += " ORDER BY campaign, run_index"
        rows = []
        for row in self._read().execute(sql, arguments):
            try:
                decoded = json.loads(row["metrics_json"])
            except ValueError as error:
                raise StoreError(
                    f"corrupt run_metrics row for campaign "
                    f"{row['campaign']!r} (run {row['run_index']}): {error}"
                )
            rows.append({
                "campaign": row["campaign"],
                "run_index": int(row["run_index"]),
                "created_at": float(row["created_at"]),
                "metrics": decoded,
            })
        return rows

    # -- statistics ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Occupancy counters for reports and the CLI."""
        conn = self._read()
        campaigns = conn.execute(
            "SELECT COUNT(*) AS n FROM campaigns"
        ).fetchone()["n"]
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "evaluations": self.evaluation_count(),
            "campaigns": campaigns,
            "checkpoints": self.checkpoint_count(),
            "artifacts": self.artifact_count(),
            "templates": self.template_entry_count(),
            "surrogates": self.surrogate_count(),
        }


# -- row decoding -------------------------------------------------------------


def _metrics_from_row(row: sqlite3.Row) -> ACIMMetrics:
    spec = ACIMDesignSpec(
        row["height"], row["width"], row["local"], row["adc_bits"]
    )
    return ACIMMetrics(
        spec=spec,
        **{field: row[field] for field in _METRIC_FIELDS},
    )


def _evaluation_from_row(row: sqlite3.Row) -> StoredEvaluation:
    return StoredEvaluation(
        metrics=_metrics_from_row(row),
        key_digest=row["key_digest"],
        params_digest=row["params_digest"],
        technology=row["technology"],
        created_at=row["created_at"],
    )


def _campaign_from_row(row: sqlite3.Row) -> CampaignRecord:
    try:
        config = json.loads(row["config_json"])
    except ValueError as error:
        raise StoreError(
            f"corrupt configuration for campaign {row['name']!r}: {error}"
        )
    return CampaignRecord(
        name=row["name"],
        array_size=row["array_size"],
        status=row["status"],
        config=config,
        params_digest=row["params_digest"],
        generations_done=row["generations_done"],
        total_generations=row["total_generations"],
        evaluations=row["evaluations"],
        runtime_seconds=row["runtime_seconds"],
        created_at=row["created_at"],
        updated_at=row["updated_at"],
    )
