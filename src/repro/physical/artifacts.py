"""Content addressing and statistics of physical-pipeline artifacts.

Every product of a pipeline stage — a solved macro, a generated netlist,
a finished top-level layout — is identified by the SHA-256 digest of a
canonical JSON document naming the *function application* that produced
it: the stage, the sub-spec parameters, the technology/library
fingerprint and the stage parameters (routing pitch, layers, margins,
format versions).  Two runs that would produce identical geometry
therefore compute identical digests, which is what lets the pipeline
serve the second run from the cache — in memory within a process, and
through the result store's ``artifacts`` table across processes and
campaigns.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Stage names of the physical pipeline, in execution order.
PIPELINE_STAGES = ("netlist", "placement", "routing", "layout", "export")


def canonical_artifact_key(stage: str, key) -> str:
    """Canonical JSON text of one artifact identity.

    ``key`` may be any JSON-serializable structure (tuples become lists);
    sorting object keys makes the text independent of construction order.
    """
    return json.dumps([stage, key], separators=(",", ":"), sort_keys=True)


def artifact_digest(stage: str, key) -> str:
    """Content address of one stage artifact: SHA-256 of the canonical key."""
    return hashlib.sha256(
        canonical_artifact_key(stage, key).encode("utf-8")
    ).hexdigest()


@dataclass
class StageStats:
    """Counters of one pipeline stage.

    Attributes:
        runs: times the stage executed (including cache-served runs).
        seconds: wall-clock spent inside the stage.
        cache_hits: runs served from the in-memory or persistent cache.
        store_hits: the subset of ``cache_hits`` served by the result store.
    """

    runs: int = 0
    seconds: float = 0.0
    cache_hits: int = 0
    store_hits: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": self.runs,
            "seconds": round(self.seconds, 6),
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
        }


@dataclass
class PipelineStats:
    """Accumulated per-stage statistics of a :class:`PhysicalPipeline`.

    Mirrors the engine's ``EngineStats`` discipline: long-lived pipelines
    accumulate forever and callers take :meth:`snapshot` / :meth:`since`
    deltas per run.
    """

    stages: Dict[str, StageStats] = field(
        default_factory=lambda: {name: StageStats() for name in PIPELINE_STAGES}
    )
    macros_built: int = 0
    macros_reused: int = 0
    macros_derived: int = 0

    def stage(self, name: str) -> StageStats:
        """The (auto-created) counters of one stage."""
        if name not in self.stages:
            self.stages[name] = StageStats()
        return self.stages[name]

    def snapshot(self) -> "PipelineStats":
        """An immutable copy to diff against later with :meth:`since`."""
        return PipelineStats(
            stages={
                name: StageStats(s.runs, s.seconds, s.cache_hits, s.store_hits)
                for name, s in self.stages.items()
            },
            macros_built=self.macros_built,
            macros_reused=self.macros_reused,
            macros_derived=self.macros_derived,
        )

    def since(self, baseline: "PipelineStats") -> "PipelineStats":
        """The delta accumulated after ``baseline`` was snapshotted."""
        delta = PipelineStats(
            stages={}, macros_built=self.macros_built - baseline.macros_built,
            macros_reused=self.macros_reused - baseline.macros_reused,
            macros_derived=self.macros_derived - baseline.macros_derived,
        )
        for name, current in self.stages.items():
            base = baseline.stages.get(name, StageStats())
            delta.stages[name] = StageStats(
                runs=current.runs - base.runs,
                seconds=current.seconds - base.seconds,
                cache_hits=current.cache_hits - base.cache_hits,
                store_hits=current.store_hits - base.store_hits,
            )
        return delta

    def as_dict(self) -> dict:
        """Serializable record (the ``physical_stats`` payload section)."""
        return {
            "stages": {
                name: self.stages[name].as_dict()
                for name in self.stages
            },
            "macros_built": self.macros_built,
            "macros_reused": self.macros_reused,
            "macros_derived": self.macros_derived,
        }

    @property
    def cache_hits(self) -> int:
        """Total cache-served stage runs across all stages."""
        return sum(stage.cache_hits for stage in self.stages.values())


@dataclass(frozen=True)
class ArtifactRecord:
    """Metadata of one persisted artifact, as listed from the store.

    Attributes:
        digest: content address (SHA-256 of the canonical stage key).
        stage: producing pipeline stage (``"macro"``, ``"layout"``, ...).
        key: the decoded identity document.
        payload: the decoded artifact payload (may be summarized).
        created_at: UNIX timestamp of the first write.
    """

    digest: str
    stage: str
    key: object
    payload: Optional[dict]
    created_at: float
