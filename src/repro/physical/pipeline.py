"""The staged physical-design pipeline (paper section 3.3, Figure 7).

:class:`PhysicalPipeline` runs the physical implementation of one design
spec through an explicit stage graph::

    netlist -> placement -> routing -> layout -> export

Every stage consumes and produces typed artifacts that are
content-addressed by the SHA-256 of (sub-spec, technology/library
fingerprint, stage parameters) — see :mod:`repro.physical.artifacts`.
The placement and routing stages run *per macro*, bottom-up (the
paper's Figure-7 strategy): the local SRAM array is placed and routed
once per unique ``L``, the ACIM column once per unique ``(H, L,
B_ADC)``, the top assembly once per spec — and each solved macro is
stored in the :class:`~repro.physical.macro_library.MacroLibrary` and
instantiated by transform everywhere it recurs, within a design, across
the designs of a distill flow, and (through the result store's
``artifacts`` table) across processes and campaigns.

With ``reuse=False`` the pipeline bypasses every cache and solves each
stage from scratch — that path is geometry-identical (GDSII
byte-identical) to the pre-pipeline generator and is regression-tested
against the reuse path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import FlowError
from repro.arch.spec import ACIMDesignSpec
from repro.cells.dimensions import CellFootprints
from repro.cells.library import CellLibrary, sar_controller_for
from repro.layout.def_export import write_def
from repro.layout.drc import check_own_level_shorts
from repro.layout.gdsii import write_gds
from repro.layout.geometry import Rect, Transform
from repro.layout.layout import LayoutCell
from repro.netlist.circuit import Circuit
from repro.obs import get_tracer
from repro.physical.artifacts import PipelineStats, artifact_digest
from repro.physical.macro_library import MacroLibrary, MacroRecord
from repro.physical.netlist_builder import NetlistBuilder
from repro.physical.templates import MacroTemplate
from repro.placement.hierarchical import HierarchicalPlacer, MacroPlacement
from repro.placement.template import ColumnStackTemplate
from repro.routing.hier_router import CellRoutePlans, HierarchicalRouter, LogicalNet
from repro.routing.tracks import power_track_plan, sar_control_track_plan
from repro.units import dbu_to_um, um2_to_f2


@dataclass
class LayoutGenerationReport:
    """Result record of one macro layout generation.

    Attributes:
        spec: the generated design point.
        layout: the top-level macro layout cell.
        width_um / height_um: die dimensions.
        area_um2: die area.
        area_f2_per_bit: die area normalised to F^2 per bit cell.
        routed_nets / failed_nets: hierarchical routing statistics.
        total_wirelength_um: routed wirelength across all levels.
        runtime_seconds: wall-clock generation time.
        gds_path / def_path: export locations when exports were requested.
    """

    spec: ACIMDesignSpec
    layout: LayoutCell
    width_um: float
    height_um: float
    area_um2: float
    area_f2_per_bit: float
    routed_nets: int
    failed_nets: int
    total_wirelength_um: float
    runtime_seconds: float
    gds_path: Optional[str] = None
    def_path: Optional[str] = None

    def as_dict(self) -> dict:
        """Flat dictionary for tabular reports."""
        return {
            "H": self.spec.height,
            "W": self.spec.width,
            "L": self.spec.local_array_size,
            "B_ADC": self.spec.adc_bits,
            "width_um": round(self.width_um, 2),
            "height_um": round(self.height_um, 2),
            "area_um2": round(self.area_um2, 1),
            "area_f2_per_bit": round(self.area_f2_per_bit, 1),
            "routed_nets": self.routed_nets,
            "failed_nets": self.failed_nets,
            "runtime_s": round(self.runtime_seconds, 3),
        }


@dataclass
class PipelineResult:
    """Everything one :meth:`PhysicalPipeline.run` produced.

    Attributes:
        spec: the design point the pipeline ran on.
        netlist: the macro netlist (when requested).
        report: the layout-generation report (when requested).
        stats: per-stage timing/cache statistics of this run only.
    """

    spec: ACIMDesignSpec
    netlist: Optional[Circuit]
    report: Optional[LayoutGenerationReport]
    stats: PipelineStats


class PhysicalPipeline:
    """Staged, artifact-cached physical implementation of design specs.

    Args:
        library: customized cell library providing leaf netlist/layout views.
        footprints: cell footprints (defaults to the calibrated area model).
        routing_pitch: routing-grid pitch in dbu.
        store: optional persistent result store backing the macro cache.
        reuse: serve repeated stage work from the macro/artifact cache;
            ``False`` solves everything from scratch (the regression
            baseline path).
        metrics: optional :class:`~repro.obs.MetricsRegistry` stage
            timings and macro reuse counters are recorded into
            (``physical.*`` names).
    """

    #: Routing layers of the over-cell grid, lowest first.
    ROUTING_LAYERS: Tuple[str, ...] = ("M2", "M3", "M4")

    def __init__(
        self,
        library: CellLibrary,
        footprints: Optional[CellFootprints] = None,
        routing_pitch: int = 200,
        store=None,
        reuse: bool = True,
        metrics=None,
    ) -> None:
        self.library = library
        self.technology = library.technology
        self.footprints = footprints or CellFootprints.from_area_parameters()
        self.routing_pitch = routing_pitch
        self.reuse = reuse
        self.placer = HierarchicalPlacer()
        self.router = HierarchicalRouter(
            self.technology,
            routing_layers=self.ROUTING_LAYERS,
            pitch=routing_pitch,
        )
        self.macro_library = MacroLibrary(library, store=store if reuse else None)
        self.netlist_builder = NetlistBuilder(library)
        self._netlist_cache: Dict[str, Circuit] = {}
        self.stats = PipelineStats()
        self.metrics = metrics

    # -- public API --------------------------------------------------------------------

    def run(
        self,
        spec: ACIMDesignSpec,
        generate_netlist: bool = False,
        generate_layout: bool = True,
        route_columns: bool = True,
        export: bool = False,
        output_dir: Optional[str] = None,
    ) -> PipelineResult:
        """Run the stage graph for one design spec.

        Args:
            spec: the design point (validated against Equation 12).
            generate_netlist: run the netlist stage.
            generate_layout: run placement/routing/layout (and export).
            route_columns: route the local-array and column interconnects
                with the maze router (disable for floorplan-only runs).
            export: write GDSII and DEF files (layout stage only).
            output_dir: directory for the exports.
        """
        spec.validate()
        baseline = self.stats.snapshot()
        netlist = None
        if generate_netlist:
            netlist = self._netlist_stage(spec)
        report = None
        if generate_layout:
            report = self._layout_stages(spec, route_columns)
            if export:
                self._export_stage(report, output_dir)
        return PipelineResult(
            spec=spec,
            netlist=netlist,
            report=report,
            stats=self.stats.since(baseline),
        )

    # -- stage: netlist ----------------------------------------------------------------

    def _netlist_stage(self, spec: ACIMDesignSpec) -> Circuit:
        digest = artifact_digest("netlist", [
            self.macro_library.fingerprint(), list(spec.as_tuple()),
        ])
        with self._timed("netlist"):
            if self.reuse:
                cached = self._netlist_cache.get(digest)
                if cached is not None:
                    self.stats.stage("netlist").cache_hits += 1
                    return cached
            netlist = self.netlist_builder.build(spec)
            if self.reuse:
                self._netlist_cache[digest] = netlist
            return netlist

    # -- stages: placement -> routing -> layout ----------------------------------------

    def _layout_stages(
        self, spec: ACIMDesignSpec, route: bool
    ) -> LayoutGenerationReport:
        start = time.perf_counter()
        record = self._macro(
            "acim_macro",
            {
                "H": spec.height, "W": spec.width,
                "L": spec.local_array_size, "B": spec.adc_bits,
                "route": route, "pitch": self.routing_pitch,
                "layers": list(self.ROUTING_LAYERS),
            },
            lambda: self._solve_top(spec, route),
            stages=("layout",),
        )
        macro = record.layout
        bbox = macro.boundary or macro.bounding_box()
        if bbox is None:
            raise FlowError("generated macro layout is empty")
        width_um = dbu_to_um(bbox.width)
        height_um = dbu_to_um(bbox.height)
        area_um2 = width_um * height_um
        return LayoutGenerationReport(
            spec=spec,
            layout=macro,
            width_um=width_um,
            height_um=height_um,
            area_um2=area_um2,
            area_f2_per_bit=um2_to_f2(area_um2, self.technology.feature_size)
            / spec.array_size,
            routed_nets=record.routed_nets,
            failed_nets=record.failed_nets,
            total_wirelength_um=dbu_to_um(record.wirelength_dbu),
            runtime_seconds=time.perf_counter() - start,
        )

    def _solve_top(
        self, spec: ACIMDesignSpec, route: bool
    ) -> Tuple[LayoutCell, Dict[str, int]]:
        """Solve the full macro bottom-up, reusing sub-macros where possible."""
        local_record = self._macro(
            "local_array",
            {
                "L": spec.local_array_size, "route": route,
                "pitch": self.routing_pitch,
                "layers": list(self.ROUTING_LAYERS),
            },
            lambda: self._build_local_array(spec, route),
            deriver=lambda template: self._derive_macro(
                template,
                lambda plans: self._build_local_array(spec, route, plans=plans),
            ),
        )
        column_record = self._macro(
            "column",
            {
                "H": spec.height, "L": spec.local_array_size,
                "B": spec.adc_bits, "route": route,
                "pitch": self.routing_pitch,
                "layers": list(self.ROUTING_LAYERS),
            },
            lambda: self._build_column(spec, local_record.layout, route),
            deriver=lambda template: self._derive_macro(
                template,
                lambda plans: self._build_column(
                    spec, local_record.layout, route, plans=plans
                ),
            ),
        )
        with self._timed("layout"):
            macro = self._build_macro(spec, column_record.layout)
            bbox = macro.bounding_box()
            if bbox is None:
                raise FlowError("generated macro layout is empty")
            macro.boundary = bbox
        totals = {
            "routed": local_record.routed_nets + column_record.routed_nets,
            "failed": local_record.failed_nets + column_record.failed_nets,
            "wirelength": (
                local_record.wirelength_dbu + column_record.wirelength_dbu
            ),
        }
        return macro, totals

    def _macro(
        self,
        kind: str,
        key,
        builder: Callable[[], Tuple[LayoutCell, Dict[str, int]]],
        stages: Sequence[str] = ("placement", "routing"),
        deriver: Optional[
            Callable[[MacroTemplate], Optional[Tuple[LayoutCell, Dict[str, int]]]]
        ] = None,
    ) -> MacroRecord:
        """One macro through the lookup ladder, with per-rung accounting.

        The ladder (exact memory hit -> exact store hit -> template derive
        from memory -> template derive from a store neighbour -> cold
        solve) lives in :meth:`MacroLibrary.get_or_build`; this wrapper
        attributes the outcome to stage counters and the per-rung
        ``physical.macro.*`` metrics.
        """
        if not self.reuse:
            layout, stats = builder()
            self.stats.macros_built += 1
            return MacroRecord(
                kind=kind,
                digest=self.macro_library.macro_digest(kind, key),
                layout=layout,
                pin_map={pin.name: pin.layer for pin in layout.pins},
                routed_nets=int(stats.get("routed", 0)),
                failed_nets=int(stats.get("failed", 0)),
                wirelength_dbu=int(stats.get("wirelength", 0)),
                area_dbu2=layout.area,
                source="built",
            )
        library = self.macro_library
        before = (
            library.built, library.memory_hits, library.store_hits,
            library.derived, library.derived_from_store,
        )
        record = library.get_or_build(kind, key, builder, deriver=deriver)
        built, memory_hits, store_hits, derived, derived_from_store = (
            library.built - before[0],
            library.memory_hits - before[1],
            library.store_hits - before[2],
            library.derived - before[3],
            library.derived_from_store - before[4],
        )
        if built:
            self.stats.macros_built += 1
            self._count("physical.macro.built")
        elif derived:
            self.stats.macros_derived += 1
            if derived_from_store:
                self._count("physical.macro.derive.store")
            else:
                self._count("physical.macro.derive.memory")
        else:
            self.stats.macros_reused += 1
            self._count("physical.macro.reuse")
            if memory_hits:
                self._count("physical.macro.hit.memory")
            elif store_hits:
                self._count("physical.macro.hit.store")
            for stage_name in stages:
                stage = self.stats.stage(stage_name)
                stage.cache_hits += 1
                if store_hits:
                    stage.store_hits += 1
        return record

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _derive_macro(
        self,
        template: MacroTemplate,
        patch_builder: Callable[
            [CellRoutePlans], Tuple[LayoutCell, Dict[str, int]]
        ],
    ) -> Optional[Tuple[LayoutCell, Dict[str, int]]]:
        """Patch a neighbouring template into the requested macro.

        Re-places the full (cheap, deterministic) instance stack and
        replays the template's recorded route plans, so only tree-growth
        steps incident to added/moved instances run a live maze search.
        The patched cell must pass the own-level short check — the one
        rule class an invalid replay could break — or the derivation is
        rejected and the caller falls back to a cold solve.
        """
        def patcher(_spec, bound_template: MacroTemplate):
            with get_tracer().span(
                "physical.template_derive",
                kind=bound_template.kind,
                parent=bound_template.digest[:12],
            ) as span:
                cell, stats = patch_builder(bound_template.record.route_plans)
                span.set("replayed", stats.get("replayed", 0))
                span.set("searched", stats.get("searched", 0))
                if check_own_level_shorts(self.technology, cell):
                    self._count("physical.macro.derive.rejected")
                    return None
                return cell, stats

        return template.derive(None, patcher)

    # -- hierarchy-level builders (placement + routing per level) ----------------------

    @staticmethod
    def _promote_pin(
        cell: LayoutCell,
        instance_name: str,
        child_pin: str,
        parent_pin: Optional[str] = None,
        size: int = 100,
    ) -> None:
        """Expose a child instance's pin as a pin of ``cell``.

        The parent pin is a small landing pad centred on the child pin's
        access point, on the child pin's layer, so upper hierarchy levels can
        connect to it without knowing the child's internals.
        """
        instance = cell.instance(instance_name)
        pin = instance.cell.pin(child_pin)
        point = instance.pin_access(child_pin)
        half = size // 2
        cell.add_pin(
            parent_pin or child_pin,
            pin.layer,
            Rect(point.x - half, point.y - half, point.x + half, point.y + half),
            direction=pin.direction,
        )

    def _build_local_array(
        self,
        spec: ACIMDesignSpec,
        route: bool,
        plans: Optional[CellRoutePlans] = None,
    ):
        """Level 1: L SRAM cells plus the shared local computing cell.

        ``plans`` (a neighbouring solve's recorded routing) turns the
        routing stage into an incremental replay-and-patch pass.
        """
        size = spec.local_array_size
        sram = self.library.layout("sram8t")
        local_compute = self.library.layout("local_compute")
        cell = LayoutCell(f"local_array_L{size}")
        order = []
        for row in range(size):
            name = f"CELL{row}"
            cell.add_instance(name, sram)
            order.append(name)
        cell.add_instance("LC", local_compute)
        order.append("LC")
        with self._timed("placement"):
            self.placer.place_with_template(cell, ColumnStackTemplate(order=order))
        stats = {"routed": 0, "failed": 0, "wirelength": 0}
        if route:
            nets = [LogicalNet(
                name="LBL",
                terminals=tuple(
                    [(f"CELL{row}", "LBL") for row in range(size)] + [("LC", "LBL")]
                ),
                critical=True,
            )]
            with self._timed("routing"):
                report = self.router.route_cell(cell, nets, margin=400, plans=plans)
            self._routing_stats(stats, report)
        # Expose the shared computing cell's column-facing pins one level up.
        self._promote_pin(cell, "LC", "RBL")
        for control in ("P", "N", "PB", "PCH", "RST"):
            self._promote_pin(cell, "LC", control)
        cell.set_boundary_from_contents()
        return cell, stats

    @staticmethod
    def _routing_stats(stats: Dict, report) -> None:
        """Fold a hierarchical routing report into builder stats."""
        stats["routed"] = len(report.result.routes)
        stats["failed"] = len(report.result.failed)
        stats["wirelength"] = report.result.total_wirelength
        stats["replayed"] = report.result.replayed_steps
        stats["searched"] = report.result.searched_steps
        stats["route_plans"] = report.plans

    def _build_column(
        self,
        spec: ACIMDesignSpec,
        local_array: LayoutCell,
        route: bool,
        plans: Optional[CellRoutePlans] = None,
    ):
        """Level 2: the full ACIM column."""
        num_local = spec.local_arrays_per_column
        comparator = self.library.layout("comparator")
        switch = self.library.layout("cmos_switch")
        sar = sar_controller_for(self.library, spec.adc_bits).layout(self.technology)
        cell = LayoutCell(
            f"acim_column_H{spec.height}_L{spec.local_array_size}_B{spec.adc_bits}"
        )
        order = []
        for index in range(num_local):
            name = f"LA{index}"
            cell.add_instance(name, local_array)
            order.append(name)
        cell.add_instance("SW_ISO", switch)
        cell.add_instance("COMP", comparator)
        cell.add_instance("SAR", sar)
        order += ["SW_ISO", "COMP", "SAR"]
        with self._timed("placement"):
            self.placer.place_with_template(cell, ColumnStackTemplate(order=order))
        cell.set_boundary_from_contents()
        stats = {"routed": 0, "failed": 0, "wirelength": 0}
        if route:
            rbl_terminals = [(f"LA{i}", "RBL") for i in range(num_local)]
            rbl_terminals += [("SW_ISO", "A"), ("COMP", "INP")]
            nets = [
                LogicalNet(name="RBL", terminals=tuple(rbl_terminals), critical=True),
                LogicalNet(
                    name="COMP_OUT",
                    terminals=(("COMP", "COM"), ("SAR", "COMP")),
                ),
            ]
            with self._timed("routing"):
                report = self.router.route_cell(cell, nets, margin=600, plans=plans)
            self._routing_stats(stats, report)
        return cell, stats

    def _build_macro(self, spec: ACIMDesignSpec, column: LayoutCell) -> LayoutCell:
        """Level 3: W columns, peripheral buffers and pre-defined tracks.

        The column macro is consumed as a solved instance: it is placed
        ``W`` times by transform, never re-routed.
        """
        macro = LayoutCell(
            f"easyacim_{spec.array_size}b_H{spec.height}"
            f"_L{spec.local_array_size}_B{spec.adc_bits}"
        )
        input_buffer = self.library.layout("input_buffer")
        output_buffer = self.library.layout("output_buffer")
        column_bbox = column.boundary or column.bounding_box()
        if column_bbox is None:
            raise FlowError("column layout is empty")
        buffer_column_width = input_buffer.width
        bottom_row_height = output_buffer.height

        # Input buffers: one per row, stacked on the left edge.
        for row in range(spec.height):
            macro.add_instance(
                f"IBUF{row}", input_buffer,
                Transform(0, bottom_row_height + row * input_buffer.height),
            )
        # Columns side by side to the right of the buffer column: the
        # solved column macro consumed as abutted instances (the positions
        # a RowTemplate over equal-width cells produces), with the
        # placer's overlap guard active.
        self.placer.place_macro_instances(macro, [
            MacroPlacement(
                f"COL{col}", column,
                Transform(
                    buffer_column_width + col * column_bbox.width,
                    bottom_row_height,
                ),
            )
            for col in range(spec.width)
        ])
        # Output buffers under each column.
        for col in range(spec.width):
            macro.add_instance(
                f"OBUF{col}", output_buffer,
                Transform(buffer_column_width + col * column_bbox.width, 0),
            )
        bbox = macro.bounding_box()
        if bbox is None:
            raise FlowError("macro layout is empty")
        # Pre-defined tracks: power stripes and SAR control lines across the
        # full macro width (the paper's critical-net tracks).
        power_plan = power_track_plan(bbox, self.technology, layer="M5")
        power_plan.realize(macro)
        control_plan = sar_control_track_plan(
            bbox, self.technology, spec.adc_bits, layer="M3",
            start_y=bbox.y_lo + bottom_row_height // 2,
        )
        control_plan.realize(macro)
        macro.add_shape("PRBOUND", bbox)
        return macro

    # -- stage: export -----------------------------------------------------------------

    def _export_stage(
        self, report: LayoutGenerationReport, output_dir: Optional[str]
    ) -> None:
        with self._timed("export"):
            directory = Path(output_dir or ".")
            directory.mkdir(parents=True, exist_ok=True)
            macro = report.layout
            gds_path = directory / f"{macro.name}.gds"
            def_path = directory / f"{macro.name}.def"
            write_gds(macro, gds_path, self.technology)
            write_def(macro, def_path)
            report.gds_path = str(gds_path)
            report.def_path = str(def_path)

    # -- helpers -----------------------------------------------------------------------

    @contextmanager
    def _timed(self, stage_name: str):
        """Attribute the enclosed wall-clock to one stage's counters.

        Also opens a ``physical.<stage>`` trace span and mirrors the
        elapsed time into the metrics registry when one is attached.
        """
        stage = self.stats.stage(stage_name)
        stage.runs += 1
        start = time.perf_counter()
        with get_tracer().span(f"physical.{stage_name}"):
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                stage.seconds += elapsed
                if self.metrics is not None:
                    self.metrics.counter(
                        f"physical.stage.{stage_name}.seconds"
                    ).add(elapsed)
                    self.metrics.counter(
                        f"physical.stage.{stage_name}.runs"
                    ).inc()
