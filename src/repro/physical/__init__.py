"""The staged, reuse-aware physical-design pipeline.

The package turns the flat per-design generators into an explicit stage
graph (netlist -> placement -> routing -> layout -> export) over typed,
content-addressed artifacts:

* :class:`~repro.physical.pipeline.PhysicalPipeline` — runs the stage
  graph for a design spec and reports per-stage timing/cache statistics.
* :class:`~repro.physical.macro_library.MacroLibrary` — the library of
  solved macros (placed + routed sub-layouts), keyed by content address
  and instantiated by transform wherever they recur.
* :mod:`~repro.physical.artifacts` — stage keys, digests and statistics.
* :mod:`~repro.physical.templates` — parametric macro templates: the
  nearest-neighbour index and incremental-patch derivation that extend
  exact-match reuse to *neighbouring* configurations.
* :mod:`~repro.physical.serialize` — exact JSON round-trip of layout
  hierarchies (and their replayable route plans), which is what lets
  macros persist in the result store's ``artifacts`` table and
  warm-start later processes byte-identically.

See ``docs/physical.md`` for the architecture and the reuse knobs.
"""

from repro.physical.artifacts import (
    ArtifactRecord,
    PIPELINE_STAGES,
    PipelineStats,
    StageStats,
    artifact_digest,
    canonical_artifact_key,
)
from repro.physical.macro_library import MACRO_STAGE, MacroLibrary, MacroRecord
from repro.physical.netlist_builder import NetlistBuilder
from repro.physical.pipeline import (
    LayoutGenerationReport,
    PhysicalPipeline,
    PipelineResult,
)
from repro.physical.serialize import (
    layout_from_dict,
    layout_to_dict,
    plans_from_dict,
    plans_to_dict,
)
from repro.physical.templates import (
    MacroTemplate,
    STRUCTURAL_PARAMS,
    TemplateIndex,
    edit_cost,
    family_digest,
    family_key,
    template_for,
    template_params,
)

__all__ = [
    "ArtifactRecord",
    "PIPELINE_STAGES",
    "PipelineStats",
    "StageStats",
    "artifact_digest",
    "canonical_artifact_key",
    "MACRO_STAGE",
    "MacroLibrary",
    "MacroRecord",
    "NetlistBuilder",
    "LayoutGenerationReport",
    "PhysicalPipeline",
    "PipelineResult",
    "layout_from_dict",
    "layout_to_dict",
    "plans_from_dict",
    "plans_to_dict",
    "MacroTemplate",
    "STRUCTURAL_PARAMS",
    "TemplateIndex",
    "edit_cost",
    "family_digest",
    "family_key",
    "template_for",
    "template_params",
]
