"""The reuse library of solved physical macros.

A *macro* is a sub-layout the pipeline solved once — generated, placed
and routed — together with its pin map and a summary of its routing and
area figures: the local SRAM array of a given ``L``, the full ACIM
column of a given ``(H, L, B_ADC)``, and so on.  The
:class:`MacroLibrary` is layered on the customized
:class:`~repro.cells.library.CellLibrary` (which provides the leaf-cell
views) and keyed by content address, so every unique subcell/tile is
solved **once** and instantiated by transform everywhere it recurs:

* within one design (``W`` identical column instances),
* across the designs of a multi-design distill flow (two Pareto points
  sharing ``L`` share the local-array macro),
* across processes and campaigns, through the result store's
  ``artifacts`` table (solved macros are serialized exactly and
  hydrated back on the next run).

This is the iprec/HierarchicalPcb pattern: a library of hierarchical
cell definitions replicated by reference instead of re-solved per copy.

Since PR 8 the exact-match cache is fronted by a *lookup ladder*: an
exact digest hit (memory, then store) is still preferred, but a miss now
consults the :class:`~repro.physical.templates.TemplateIndex` — and, for
cold processes, the store's ``template_index`` table — for the nearest
solved neighbour of the same template family and derives the requested
macro from it by incremental patch instead of solving cold.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.cells.library import CellLibrary
from repro.errors import LayoutError, StoreError
from repro.layout.layout import LayoutCell
from repro.physical.artifacts import artifact_digest
from repro.physical.serialize import (
    LAYOUT_FORMAT,
    layout_from_dict,
    layout_to_dict,
    plans_from_dict,
    plans_to_dict,
)
from repro.physical.templates import (
    MacroTemplate,
    TemplateIndex,
    edit_cost,
    family_digest,
    family_key,
    template_for,
    template_params,
)
from repro.routing.hier_router import CellRoutePlans

#: Stage tag macros are stored under in the ``artifacts`` table.
MACRO_STAGE = "macro"


@dataclass(frozen=True)
class MacroRecord:
    """One solved macro, ready to instantiate by transform.

    Attributes:
        kind: macro family (``"local_array"``, ``"column"``, ...).
        digest: content address of the macro identity.
        layout: the solved (placed + routed) layout cell.
        pin_map: pin name -> layer of the macro's interface pins.
        routed_nets / failed_nets / wirelength_dbu: routing summary of the
            solve, replayed into flow reports on reuse.
        area_dbu2: boundary area of the macro.
        source: how the last serving of this record was satisfied
            (``built`` — solved cold in this process, ``memory`` —
            in-process reuse, ``store`` — hydrated from the persistent
            artifact cache, ``derived`` — patched from a neighbouring
            template).
        route_plans: replayable routing record of the solve; what makes
            this record usable as a :class:`~repro.physical.templates.MacroTemplate`.
            ``None`` for macros without interconnect routing and for
            payloads persisted before plans existed.
    """

    kind: str
    digest: str
    layout: LayoutCell
    pin_map: Dict[str, str]
    routed_nets: int
    failed_nets: int
    wirelength_dbu: int
    area_dbu2: int
    source: str = "built"
    route_plans: Optional[CellRoutePlans] = None

    def summary(self) -> dict:
        """Flat row for the ``repro library macros`` listing."""
        return {
            "kind": self.kind,
            "cell": self.layout.name,
            "digest": self.digest[:12],
            "pins": len(self.pin_map),
            "routed_nets": self.routed_nets,
            "failed_nets": self.failed_nets,
            "area_dbu2": self.area_dbu2,
            "source": self.source,
        }


class MacroLibrary:
    """Content-addressed cache of solved macros over a cell library.

    Args:
        library: the customized cell library macros are built from; its
            fingerprint is part of every macro key, so two processes with
            different leaf-cell footprints never share a macro.
        store: optional persistent result store; solved macros are
            written to its ``artifacts`` table and served back across
            process lifetimes.
    """

    def __init__(self, library: CellLibrary, store=None) -> None:
        self.library = library
        self.store = store
        self._memory: Dict[str, MacroRecord] = {}
        self._fingerprint: Optional[str] = None
        self.templates = TemplateIndex()
        self.built = 0
        self.memory_hits = 0
        self.store_hits = 0
        self.derived = 0
        self.derived_from_store = 0

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of everything a macro's geometry depends on.

        Covers the library name, the technology and every leaf cell's
        footprint and pin interface, so a macro key changes whenever the
        generated geometry could.
        """
        if self._fingerprint is None:
            technology = self.library.technology
            cells = []
            for name in sorted(self.library.cell_names):
                layout = self.library.layout(name)
                cells.append([
                    name, layout.width, layout.height,
                    sorted(pin.name for pin in layout.pins),
                ])
            document = json.dumps(
                [
                    self.library.name,
                    technology.name,
                    technology.feature_size,
                    LAYOUT_FORMAT,
                    cells,
                ],
                separators=(",", ":"), sort_keys=True,
            )
            self._fingerprint = hashlib.sha256(
                document.encode("utf-8")
            ).hexdigest()
        return self._fingerprint

    def macro_digest(self, kind: str, key) -> str:
        """Content address of one macro identity under this library."""
        return artifact_digest(MACRO_STAGE, [kind, self.fingerprint(), key])

    # -- the cache -------------------------------------------------------------

    def get_or_build(
        self,
        kind: str,
        key,
        builder: Callable[[], Tuple[LayoutCell, Dict[str, int]]],
        deriver: Optional[
            Callable[[MacroTemplate], Optional[Tuple[LayoutCell, Dict[str, int]]]]
        ] = None,
    ) -> MacroRecord:
        """Serve a solved macro through the lookup ladder.

        The ladder is: exact digest hit in memory -> exact hit in the
        store -> incremental derive from the nearest same-family template
        (in-memory index first, then the store's ``template_index``) ->
        cold solve.  The returned record's ``source`` names the rung that
        satisfied the request.

        Args:
            kind: macro family name.
            key: JSON-serializable identity of the macro within the family
                (sub-spec values plus stage parameters).
            builder: zero-argument callable solving the macro from
                scratch; returns ``(layout, stats)`` with ``stats``
                carrying ``routed`` / ``failed`` / ``wirelength`` counts
                (and ``route_plans`` when the solve routed interconnect).
            deriver: optional callable patching a neighbouring
                :class:`~repro.physical.templates.MacroTemplate` into this
                macro; returns the patched ``(layout, stats)`` or ``None``
                to decline (which falls through to the cold build).
        """
        digest = self.macro_digest(kind, key)
        record = self._memory.get(digest)
        if record is not None:
            self.memory_hits += 1
            if record.source != "memory":
                record = replace(record, source="memory")
                self._memory[digest] = record
            return record
        record = self._load(kind, digest)
        if record is not None:
            self.store_hits += 1
            self._memory[digest] = record
            self._register_template(record, key)
            return record
        if deriver is not None:
            record = self._derive(kind, key, digest, deriver)
            if record is not None:
                return record
        layout, stats = builder()
        record = self._admit(kind, key, digest, layout, stats, source="built")
        self.built += 1
        return record

    def macros(self) -> List[MacroRecord]:
        """Every macro currently held in memory, oldest first."""
        return list(self._memory.values())

    def __len__(self) -> int:
        return len(self._memory)

    # -- template derivation ---------------------------------------------------

    def nearest_template(
        self, kind: str, key, exclude_digest: Optional[str] = None
    ) -> Optional[MacroTemplate]:
        """The cheapest-to-patch solved neighbour of a macro identity.

        Looks in the in-memory :class:`TemplateIndex` first and falls back
        to the store's ``template_index`` table (hydrating the candidate
        macro), mirroring the exact-match ladder.  ``None`` when the kind
        is not templated or no same-family neighbour exists.
        """
        template, _origin = self._nearest_with_origin(kind, key, exclude_digest)
        return template

    def _nearest_with_origin(
        self, kind: str, key, exclude_digest: Optional[str] = None
    ) -> Tuple[Optional[MacroTemplate], str]:
        params = template_params(kind, key)
        family = family_key(kind, key)
        if params is None or family is None:
            return None, "none"
        digest = family_digest(kind, self.fingerprint(), family)
        template = self.templates.nearest(
            kind, digest, params, exclude_digest=exclude_digest
        )
        if template is not None:
            return template, "memory"
        template = self._nearest_from_store(
            kind, digest, family, params, exclude_digest
        )
        return template, "store" if template is not None else "none"

    def _derive(
        self,
        kind: str,
        key,
        digest: str,
        deriver: Callable[[MacroTemplate], Optional[Tuple[LayoutCell, Dict[str, int]]]],
    ) -> Optional[MacroRecord]:
        template, origin = self._nearest_with_origin(
            kind, key, exclude_digest=digest
        )
        if template is None:
            return None
        derived = deriver(template)
        if derived is None:
            return None
        layout, stats = derived
        record = self._admit(kind, key, digest, layout, stats, source="derived")
        self.derived += 1
        if origin == "store":
            self.derived_from_store += 1
        return record

    def _nearest_from_store(
        self,
        kind: str,
        family_id: str,
        family: Dict[str, object],
        params: Dict[str, int],
        exclude_digest: Optional[str],
    ) -> Optional[MacroTemplate]:
        if self.store is None or not hasattr(self.store, "list_template_entries"):
            return None
        candidates = []
        for row in self.store.list_template_entries(
            kind=kind, family_digest=family_id
        ):
            candidate_digest = row["artifact_digest"]
            if candidate_digest == exclude_digest:
                continue
            try:
                cost = edit_cost(kind, row["params"], params, family)
            except (KeyError, TypeError, ValueError):
                continue
            candidates.append((cost, candidate_digest, dict(row["params"])))
        candidates.sort(key=lambda entry: entry[:2])
        # Hydrating a candidate is itself costly, so only the few nearest
        # are tried; pre-template payloads (no plans) are skipped.
        for _cost, candidate_digest, candidate_params in candidates[:4]:
            record = self._load(kind, candidate_digest)
            if record is None or record.route_plans is None:
                continue
            self._memory.setdefault(candidate_digest, record)
            template = MacroTemplate(
                kind=kind,
                family_digest=family_id,
                family=family,
                params=candidate_params,
                record=record,
            )
            self.templates.add(template)
            return template
        return None

    def _admit(
        self,
        kind: str,
        key,
        digest: str,
        layout: LayoutCell,
        stats: Dict,
        source: str,
    ) -> MacroRecord:
        """Record, index and persist a freshly solved or derived macro."""
        plans = stats.get("route_plans")
        record = MacroRecord(
            kind=kind,
            digest=digest,
            layout=layout,
            pin_map={pin.name: pin.layer for pin in layout.pins},
            routed_nets=int(stats.get("routed", 0)),
            failed_nets=int(stats.get("failed", 0)),
            wirelength_dbu=int(stats.get("wirelength", 0)),
            area_dbu2=layout.area,
            source=source,
            route_plans=plans if isinstance(plans, CellRoutePlans) else None,
        )
        self._memory[digest] = record
        self._persist(record, key)
        self._register_template(record, key)
        return record

    def _register_template(self, record: MacroRecord, key) -> None:
        """Index a solved macro for near-miss reuse (memory + store)."""
        template = template_for(record.kind, key, self.fingerprint(), record)
        if template is None:
            return
        self.templates.add(template)
        if self.store is not None and hasattr(self.store, "put_template_entry"):
            self.store.put_template_entry(
                kind=template.kind,
                family_digest=template.family_digest,
                params=template.params,
                artifact_digest=record.digest,
            )

    # -- persistence -----------------------------------------------------------

    def _persist(self, record: MacroRecord, key) -> None:
        if self.store is None:
            return
        payload = {
            "kind": record.kind,
            "layout": layout_to_dict(record.layout),
            "pin_map": record.pin_map,
            "routed_nets": record.routed_nets,
            "failed_nets": record.failed_nets,
            "wirelength_dbu": record.wirelength_dbu,
            "area_dbu2": record.area_dbu2,
        }
        if record.route_plans is not None:
            payload["route_plans"] = plans_to_dict(record.route_plans)
        self.store.put_artifact(
            record.digest, MACRO_STAGE, [record.kind, key], payload=payload,
        )

    def _load(self, kind: str, digest: str) -> Optional[MacroRecord]:
        if self.store is None:
            return None
        payload = self.store.get_artifact(digest)
        if payload is None:
            return None
        try:
            layout = layout_from_dict(payload["layout"])
            return MacroRecord(
                kind=kind,
                digest=digest,
                layout=layout,
                pin_map=dict(payload["pin_map"]),
                routed_nets=int(payload["routed_nets"]),
                failed_nets=int(payload["failed_nets"]),
                wirelength_dbu=int(payload["wirelength_dbu"]),
                area_dbu2=int(payload["area_dbu2"]),
                source="store",
                route_plans=plans_from_dict(payload.get("route_plans")),
            )
        except (KeyError, TypeError, ValueError, LayoutError) as error:
            raise StoreError(f"corrupt macro artifact {digest}: {error}")
