"""The reuse library of solved physical macros.

A *macro* is a sub-layout the pipeline solved once — generated, placed
and routed — together with its pin map and a summary of its routing and
area figures: the local SRAM array of a given ``L``, the full ACIM
column of a given ``(H, L, B_ADC)``, and so on.  The
:class:`MacroLibrary` is layered on the customized
:class:`~repro.cells.library.CellLibrary` (which provides the leaf-cell
views) and keyed by content address, so every unique subcell/tile is
solved **once** and instantiated by transform everywhere it recurs:

* within one design (``W`` identical column instances),
* across the designs of a multi-design distill flow (two Pareto points
  sharing ``L`` share the local-array macro),
* across processes and campaigns, through the result store's
  ``artifacts`` table (solved macros are serialized exactly and
  hydrated back on the next run).

This is the iprec/HierarchicalPcb pattern: a library of hierarchical
cell definitions replicated by reference instead of re-solved per copy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cells.library import CellLibrary
from repro.errors import LayoutError, StoreError
from repro.layout.layout import LayoutCell
from repro.physical.artifacts import artifact_digest
from repro.physical.serialize import (
    LAYOUT_FORMAT,
    layout_from_dict,
    layout_to_dict,
)

#: Stage tag macros are stored under in the ``artifacts`` table.
MACRO_STAGE = "macro"


@dataclass(frozen=True)
class MacroRecord:
    """One solved macro, ready to instantiate by transform.

    Attributes:
        kind: macro family (``"local_array"``, ``"column"``, ...).
        digest: content address of the macro identity.
        layout: the solved (placed + routed) layout cell.
        pin_map: pin name -> layer of the macro's interface pins.
        routed_nets / failed_nets / wirelength_dbu: routing summary of the
            solve, replayed into flow reports on reuse.
        area_dbu2: boundary area of the macro.
        source: where this record came from (``built`` — solved in this
            process, ``memory`` — in-process reuse, ``store`` — hydrated
            from the persistent artifact cache).
    """

    kind: str
    digest: str
    layout: LayoutCell
    pin_map: Dict[str, str]
    routed_nets: int
    failed_nets: int
    wirelength_dbu: int
    area_dbu2: int
    source: str = "built"

    def summary(self) -> dict:
        """Flat row for the ``repro library macros`` listing."""
        return {
            "kind": self.kind,
            "cell": self.layout.name,
            "digest": self.digest[:12],
            "pins": len(self.pin_map),
            "routed_nets": self.routed_nets,
            "failed_nets": self.failed_nets,
            "area_dbu2": self.area_dbu2,
            "source": self.source,
        }


class MacroLibrary:
    """Content-addressed cache of solved macros over a cell library.

    Args:
        library: the customized cell library macros are built from; its
            fingerprint is part of every macro key, so two processes with
            different leaf-cell footprints never share a macro.
        store: optional persistent result store; solved macros are
            written to its ``artifacts`` table and served back across
            process lifetimes.
    """

    def __init__(self, library: CellLibrary, store=None) -> None:
        self.library = library
        self.store = store
        self._memory: Dict[str, MacroRecord] = {}
        self._fingerprint: Optional[str] = None
        self.built = 0
        self.memory_hits = 0
        self.store_hits = 0

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of everything a macro's geometry depends on.

        Covers the library name, the technology and every leaf cell's
        footprint and pin interface, so a macro key changes whenever the
        generated geometry could.
        """
        if self._fingerprint is None:
            technology = self.library.technology
            cells = []
            for name in sorted(self.library.cell_names):
                layout = self.library.layout(name)
                cells.append([
                    name, layout.width, layout.height,
                    sorted(pin.name for pin in layout.pins),
                ])
            document = json.dumps(
                [
                    self.library.name,
                    technology.name,
                    technology.feature_size,
                    LAYOUT_FORMAT,
                    cells,
                ],
                separators=(",", ":"), sort_keys=True,
            )
            self._fingerprint = hashlib.sha256(
                document.encode("utf-8")
            ).hexdigest()
        return self._fingerprint

    def macro_digest(self, kind: str, key) -> str:
        """Content address of one macro identity under this library."""
        return artifact_digest(MACRO_STAGE, [kind, self.fingerprint(), key])

    # -- the cache -------------------------------------------------------------

    def get_or_build(
        self,
        kind: str,
        key,
        builder: Callable[[], Tuple[LayoutCell, Dict[str, int]]],
    ) -> MacroRecord:
        """Serve a solved macro from cache, or solve and cache it.

        Args:
            kind: macro family name.
            key: JSON-serializable identity of the macro within the family
                (sub-spec values plus stage parameters).
            builder: zero-argument callable solving the macro from
                scratch; returns ``(layout, stats)`` with ``stats``
                carrying ``routed`` / ``failed`` / ``wirelength`` counts.
        """
        digest = self.macro_digest(kind, key)
        record = self._memory.get(digest)
        if record is not None:
            self.memory_hits += 1
            return record
        record = self._load(kind, digest)
        if record is not None:
            self.store_hits += 1
            self._memory[digest] = record
            return record
        layout, stats = builder()
        record = MacroRecord(
            kind=kind,
            digest=digest,
            layout=layout,
            pin_map={pin.name: pin.layer for pin in layout.pins},
            routed_nets=int(stats.get("routed", 0)),
            failed_nets=int(stats.get("failed", 0)),
            wirelength_dbu=int(stats.get("wirelength", 0)),
            area_dbu2=layout.area,
            source="built",
        )
        self.built += 1
        self._memory[digest] = record
        self._persist(record, key)
        return record

    def macros(self) -> List[MacroRecord]:
        """Every macro currently held in memory, oldest first."""
        return list(self._memory.values())

    def __len__(self) -> int:
        return len(self._memory)

    # -- persistence -----------------------------------------------------------

    def _persist(self, record: MacroRecord, key) -> None:
        if self.store is None:
            return
        self.store.put_artifact(
            record.digest, MACRO_STAGE, [record.kind, key],
            payload={
                "kind": record.kind,
                "layout": layout_to_dict(record.layout),
                "pin_map": record.pin_map,
                "routed_nets": record.routed_nets,
                "failed_nets": record.failed_nets,
                "wirelength_dbu": record.wirelength_dbu,
                "area_dbu2": record.area_dbu2,
            },
        )

    def _load(self, kind: str, digest: str) -> Optional[MacroRecord]:
        if self.store is None:
            return None
        payload = self.store.get_artifact(digest)
        if payload is None:
            return None
        try:
            layout = layout_from_dict(payload["layout"])
            return MacroRecord(
                kind=kind,
                digest=digest,
                layout=layout,
                pin_map=dict(payload["pin_map"]),
                routed_nets=int(payload["routed_nets"]),
                failed_nets=int(payload["failed_nets"]),
                wirelength_dbu=int(payload["wirelength_dbu"]),
                area_dbu2=int(payload["area_dbu2"]),
                source="store",
            )
        except (KeyError, TypeError, ValueError, LayoutError) as error:
            raise StoreError(f"corrupt macro artifact {digest}: {error}")
