"""Exact JSON round-trip serialization of layout-cell hierarchies.

The macro/artifact cache persists solved macros (placed *and* routed
:class:`~repro.layout.layout.LayoutCell` hierarchies) in the SQLite
result store so later processes can instantiate them instead of
re-solving.  That only works if deserialization is *exact*: the same
shapes in the same order on the same layers, the same pins, the same
child transforms — the GDSII writer iterates those lists directly, so an
exact round-trip is what makes a store-hydrated macro byte-identical to
a freshly generated one (the ``make physical-smoke`` gate).

Everything in a layout cell is integers, strings and enum names, so a
plain JSON document represents it losslessly.  Hierarchies are stored as
a flat cell table in bottom-up order (children before parents) with
instances referencing cells by name; shared sub-cells are therefore
stored once and shared again after loading, exactly like the in-memory
original.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import LayoutError
from repro.layout.geometry import Orientation, Rect, Transform
from repro.layout.grid import GridNode
from repro.layout.layout import LayoutCell
from repro.routing.hier_router import CellRoutePlans
from repro.routing.router import NetPlan, RouteStep

#: Bumped whenever the document layout changes incompatibly; a mismatch
#: makes the artifact cache treat the payload as a miss, never misread it.
LAYOUT_FORMAT = 1

#: Format tag for serialized route plans (:class:`CellRoutePlans`); bumped
#: independently of the layout format so plans can evolve without
#: invalidating the (still exact) layout payloads they ride along with.
PLAN_FORMAT = 1


def _rect_to_list(rect: Rect) -> List[int]:
    return [rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi]


def _rect_from_list(values) -> Rect:
    return Rect(int(values[0]), int(values[1]), int(values[2]), int(values[3]))


def _bottom_up(cell: LayoutCell) -> List[LayoutCell]:
    """Distinct cells of the hierarchy, children before parents."""
    ordered: List[LayoutCell] = []
    visited: Dict[str, LayoutCell] = {}

    def visit(current: LayoutCell) -> None:
        seen = visited.get(current.name)
        if seen is not None:
            if seen is not current:
                raise LayoutError(
                    f"two different layout cells share the name "
                    f"{current.name!r}; cannot serialize the hierarchy"
                )
            return
        visited[current.name] = current
        for instance in current.instances:
            visit(instance.cell)
        ordered.append(current)

    visit(cell)
    return ordered


def layout_to_dict(cell: LayoutCell) -> dict:
    """Serialize a layout hierarchy to a JSON-compatible dictionary."""
    cells = []
    for current in _bottom_up(cell):
        cells.append({
            "name": current.name,
            "boundary": (
                None if current.boundary is None
                else _rect_to_list(current.boundary)
            ),
            # Pin geometry is duplicated into the shape list at add_pin
            # time; serialize the full shape list and re-register pins
            # without re-adding their shapes on load.
            "shapes": [
                [shape.layer, *_rect_to_list(shape.rect), shape.net]
                for shape in current.shapes
            ],
            "pins": [
                [pin.name, pin.layer, *_rect_to_list(pin.rect), pin.direction]
                for pin in current.pins
            ],
            "instances": [
                [
                    instance.name,
                    instance.cell.name,
                    instance.transform.dx,
                    instance.transform.dy,
                    instance.transform.orientation.value,
                ]
                for instance in current.instances
            ],
        })
    return {"format": LAYOUT_FORMAT, "top": cell.name, "cells": cells}


def layout_from_dict(data: dict) -> LayoutCell:
    """Rebuild the layout hierarchy serialized by :func:`layout_to_dict`."""
    if not isinstance(data, dict) or data.get("format") != LAYOUT_FORMAT:
        raise LayoutError(
            f"unsupported layout document format "
            f"{data.get('format') if isinstance(data, dict) else data!r}"
        )
    cells: Dict[str, LayoutCell] = {}
    for record in data["cells"]:
        cell = LayoutCell(record["name"])
        if record["boundary"] is not None:
            cell.boundary = _rect_from_list(record["boundary"])
        for name, layer, x_lo, y_lo, x_hi, y_hi, direction in record["pins"]:
            cell.add_pin(
                name, layer, Rect(int(x_lo), int(y_lo), int(x_hi), int(y_hi)),
                direction=direction, add_shape=False,
            )
        for layer, x_lo, y_lo, x_hi, y_hi, net in record["shapes"]:
            cell.add_shape(
                layer, Rect(int(x_lo), int(y_lo), int(x_hi), int(y_hi)),
                net=net,
            )
        for name, child_name, dx, dy, orientation in record["instances"]:
            child = cells.get(child_name)
            if child is None:
                raise LayoutError(
                    f"cell {record['name']!r} references unknown child "
                    f"{child_name!r}; document is not bottom-up"
                )
            cell.add_instance(
                name, child,
                Transform(int(dx), int(dy), Orientation(orientation)),
            )
        cells[cell.name] = cell
    top: Optional[LayoutCell] = cells.get(data["top"])
    if top is None:
        raise LayoutError(f"layout document has no top cell {data['top']!r}")
    return top


# -- route plans ------------------------------------------------------------


def _node_to_list(node: GridNode) -> List[int]:
    return [node.x, node.y, node.layer]


def _node_from_list(values) -> GridNode:
    return GridNode(int(values[0]), int(values[1]), int(values[2]))


def plans_to_dict(plans: CellRoutePlans) -> dict:
    """Serialize a routing pass's replayable plans to JSON-compatible form."""
    return {
        "format": PLAN_FORMAT,
        "origin": [plans.origin[0], plans.origin[1]],
        "pitch": plans.pitch,
        "nets": {
            name: {
                "root": _node_to_list(plan.root),
                "steps": [
                    [_node_to_list(step.target),
                     [_node_to_list(node) for node in step.path]]
                    for step in plan.steps
                ],
            }
            for name, plan in plans.nets.items()
        },
    }


def plans_from_dict(data: Optional[dict]) -> Optional[CellRoutePlans]:
    """Rebuild :func:`plans_to_dict` output; ``None`` on absent or
    unsupported payloads (plans are an optimisation, never required)."""
    if not isinstance(data, dict) or data.get("format") != PLAN_FORMAT:
        return None
    nets: Dict[str, NetPlan] = {}
    for name, record in data["nets"].items():
        nets[name] = NetPlan(
            root=_node_from_list(record["root"]),
            steps=tuple(
                RouteStep(
                    target=_node_from_list(target),
                    path=tuple(_node_from_list(node) for node in path),
                )
                for target, path in record["steps"]
            ),
        )
    origin = data["origin"]
    return CellRoutePlans(
        origin=(int(origin[0]), int(origin[1])),
        pitch=int(data["pitch"]),
        nets=nets,
    )
