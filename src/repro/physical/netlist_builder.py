"""Template-based ACIM netlist construction (paper Figure 4, middle).

The netlist stage of the physical pipeline: given a design spec and the
cell library, assemble the full macro netlist hierarchically, mirroring
the synthesizable architecture:

* a **local array** subcircuit: L 8T SRAM cells sharing one local
  computing cell,
* a **column** subcircuit: H/L local arrays, the read-bitline isolation
  switch, the dynamic comparator, the SAR controller and the output
  buffer,
* the **macro**: W identical columns plus the per-row input buffers.

The output is an ordinary :class:`repro.netlist.Circuit`, so it can be
validated, flattened, counted and exported to SPICE like any other
circuit.  :class:`~repro.flow.netlist_gen.TemplateNetlistGenerator` is
the thin flow-facing driver over this builder.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import FlowError
from repro.arch.architecture import SynthesizableACIM
from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import CellLibrary, sar_controller_for
from repro.netlist.circuit import Circuit, Pin, PinDirection

#: Cells the builder instantiates; the driver validates their presence.
REQUIRED_CELLS: Tuple[str, ...] = (
    "sram8t", "local_compute", "comparator", "sar_dff",
    "cmos_switch", "input_buffer", "output_buffer",
)


class NetlistBuilder:
    """Builds macro netlists from the cell library for given design specs."""

    def __init__(self, library: CellLibrary) -> None:
        missing = [name for name in REQUIRED_CELLS if not library.has_cell(name)]
        if missing:
            raise FlowError(f"cell library is missing required cells: {missing}")
        self.library = library

    # -- public API -----------------------------------------------------------------

    def build(self, spec: ACIMDesignSpec) -> Circuit:
        """Build the macro netlist for ``spec``."""
        spec.validate()
        architecture = SynthesizableACIM(spec)
        local_array = self._local_array_circuit(spec)
        column = self._column_circuit(spec, local_array)
        return self._macro_circuit(spec, architecture, column)

    # -- subcircuit builders -----------------------------------------------------------

    def _local_array_circuit(self, spec: ACIMDesignSpec) -> Circuit:
        """L SRAM cells sharing one local computing cell."""
        size = spec.local_array_size
        pins = [Pin(f"RWL{i}", PinDirection.INPUT) for i in range(size)]
        pins += [Pin(f"WL{i}", PinDirection.INPUT) for i in range(size)]
        pins += [
            Pin("BL", PinDirection.INOUT),
            Pin("BLB", PinDirection.INOUT),
            Pin("RBL", PinDirection.INOUT),
            Pin("P", PinDirection.INPUT),
            Pin("N", PinDirection.INPUT),
            Pin("PB", PinDirection.INPUT),
            Pin("PCH", PinDirection.INPUT),
            Pin("RST", PinDirection.INPUT),
            Pin("VCM", PinDirection.SUPPLY),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ]
        circuit = Circuit(f"local_array_L{size}", pins=pins)
        sram = self.library.netlist("sram8t")
        for row in range(size):
            circuit.add_instance(f"CELL{row}", sram, connections={
                "WL": f"WL{row}",
                "BL": "BL",
                "BLB": "BLB",
                "RWL": f"RWL{row}",
                "LBL": "LBL",
                "VDD": "VDD",
                "VSS": "VSS",
            })
        circuit.add_instance("LC", self.library.netlist("local_compute"), connections={
            "LBL": "LBL",
            "RBL": "RBL",
            "P": "P",
            "N": "N",
            "PB": "PB",
            "PCH": "PCH",
            "RST": "RST",
            "VCM": "VCM",
            "VDD": "VDD",
            "VSS": "VSS",
        })
        return circuit

    def _column_circuit(self, spec: ACIMDesignSpec, local_array: Circuit) -> Circuit:
        """One column: local arrays, isolation switch, comparator, SAR logic."""
        num_local = spec.local_arrays_per_column
        bits = spec.adc_bits
        pins = [Pin(f"RWL{row}", PinDirection.INPUT) for row in range(spec.height)]
        pins += [Pin(f"WL{row}", PinDirection.INPUT) for row in range(spec.height)]
        pins += [
            Pin("BL", PinDirection.INOUT),
            Pin("BLB", PinDirection.INOUT),
            Pin("PCH", PinDirection.INPUT),
            Pin("RST", PinDirection.INPUT),
            Pin("CLK", PinDirection.INPUT),
            Pin("DOUT", PinDirection.OUTPUT),
            Pin("VCM", PinDirection.SUPPLY),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ]
        circuit = Circuit(
            f"acim_column_H{spec.height}_L{spec.local_array_size}_B{bits}", pins=pins
        )
        # Map every local array to the SAR group whose control lines drive it;
        # surplus local arrays beyond the CDAC stay on the switched segment.
        architecture = SynthesizableACIM(spec)
        column_plan = architecture.column_plan(0)
        group_of_local = {
            array.index: array.sar_group for array in column_plan.local_arrays
        }
        for local_index in range(num_local):
            base_row = local_index * spec.local_array_size
            group = group_of_local.get(local_index, -1)
            # Group 0 and 1 both have weight 1; control signals are indexed by
            # the SAR bit they implement (group i >= 1 -> bit i - 1).
            bit = max(0, group - 1) if group >= 0 else 0
            control_suffix = f"{bit}"
            connections = {
                "BL": "BL",
                "BLB": "BLB",
                "RBL": "RBL" if group >= 0 else "RBL_EXT",
                "P": f"P{control_suffix}" if group >= 1 else "VSS",
                "N": f"N{control_suffix}" if group >= 1 else "VSS",
                "PB": "SHARE_EN",
                "PCH": "PCH",
                "RST": "RST",
                "VCM": "VCM",
                "VDD": "VDD",
                "VSS": "VSS",
            }
            for offset in range(spec.local_array_size):
                connections[f"RWL{offset}"] = f"RWL{base_row + offset}"
                connections[f"WL{offset}"] = f"WL{base_row + offset}"
            circuit.add_instance(f"LA{local_index}", local_array, connections)
        # Isolation switch separating the surplus capacitance after sampling.
        circuit.add_instance("SW_ISO", self.library.netlist("cmos_switch"), connections={
            "A": "RBL",
            "B": "RBL_EXT",
            "EN": "SHARE_EN",
            "ENB": "SHARE_ENB",
            "VDD": "VDD",
            "VSS": "VSS",
        })
        circuit.add_instance("COMP", self.library.netlist("comparator"), connections={
            "INP": "RBL",
            "INN": "VCM",
            "CLK": "CLK",
            "COM": "COMP_OUT",
            "COMB": "COMP_OUTB",
            "VDD": "VDD",
            "VSS": "VSS",
        })
        sar = sar_controller_for(self.library, bits)
        sar_connections = {
            "COMP": "COMP_OUT",
            "CLK": "CLK",
            "VDD": "VDD",
            "VSS": "VSS",
        }
        for bit in range(bits):
            sar_connections[f"P{bit}"] = f"P{bit}"
            sar_connections[f"N{bit}"] = f"N{bit}"
        circuit.add_instance("SAR", sar.netlist(), sar_connections)
        circuit.add_instance("OBUF", self.library.netlist("output_buffer"), connections={
            "IN": "COMP_OUT",
            "OUT": "DOUT",
            "VDD": "VDD",
            "VSS": "VSS",
        })
        return circuit

    def _macro_circuit(
        self,
        spec: ACIMDesignSpec,
        architecture: SynthesizableACIM,
        column: Circuit,
    ) -> Circuit:
        """W identical columns plus the per-row input buffers."""
        pins = [Pin(f"XIN{row}", PinDirection.INPUT) for row in range(spec.height)]
        pins += [Pin(f"WL{row}", PinDirection.INPUT) for row in range(spec.height)]
        pins += [Pin(f"DOUT{col}", PinDirection.OUTPUT) for col in range(spec.width)]
        pins += [Pin(f"BL{col}", PinDirection.INOUT) for col in range(spec.width)]
        pins += [Pin(f"BLB{col}", PinDirection.INOUT) for col in range(spec.width)]
        pins += [
            Pin("PCH", PinDirection.INPUT),
            Pin("RST", PinDirection.INPUT),
            Pin("CLK", PinDirection.INPUT),
            Pin("VCM", PinDirection.SUPPLY),
            Pin("VDD", PinDirection.SUPPLY),
            Pin("VSS", PinDirection.SUPPLY),
        ]
        name = (
            f"easyacim_{spec.array_size}b_H{spec.height}"
            f"_L{spec.local_array_size}_B{spec.adc_bits}"
        )
        macro = Circuit(name, pins=pins)
        input_buffer = self.library.netlist("input_buffer")
        for row in range(spec.height):
            macro.add_instance(f"IBUF{row}", input_buffer, connections={
                "IN": f"XIN{row}",
                "OUT": f"RWL{row}",
                "VDD": "VDD",
                "VSS": "VSS",
            })
        for col in range(spec.width):
            connections = {
                "BL": f"BL{col}",
                "BLB": f"BLB{col}",
                "PCH": "PCH",
                "RST": "RST",
                "CLK": "CLK",
                "DOUT": f"DOUT{col}",
                "VCM": "VCM",
                "VDD": "VDD",
                "VSS": "VSS",
            }
            for row in range(spec.height):
                connections[f"RWL{row}"] = f"RWL{row}"
                connections[f"WL{row}"] = f"WL{row}"
            macro.add_instance(f"COL{col}", column, connections)
        macro.validate()
        return macro
