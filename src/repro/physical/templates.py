"""Parametric macro templates: near-miss reuse by incremental patching.

The :class:`~repro.physical.macro_library.MacroLibrary` (PR 5) only reuses
macros whose content address matches exactly.  Sweeping neighbouring
``(H, L, B_ADC)`` configurations — the dominant workload of NSGA-II
campaigns and distill flows — therefore pays a full cold place-and-route
per point even when the solved layout differs by one row of local arrays
or one SAR stack.  This module closes that gap with the iprec-style
*parameterized* template match the ROADMAP calls for:

* a :class:`MacroTemplate` generalizes one solved
  :class:`~repro.physical.macro_library.MacroRecord` over its *structural*
  parameters (the row count ``L`` for ``local_array`` macros, ``(H, B)``
  for ``column`` macros) while pinning every parameter that changes leaf
  geometry (routing pitch and layers, the library fingerprint) into an
  immutable *family*;
* :func:`edit_cost` ranks candidate templates by how much structure a
  patch must touch (rows added or dropped, SAR stack swapped), and
  :class:`TemplateIndex` answers nearest-neighbour queries under that
  metric deterministically;
* :meth:`MacroTemplate.derive` produces a neighbouring macro by
  *incremental patch*: the pipeline re-places only the delta band of
  instances and replays the template's recorded route plans
  (:class:`~repro.routing.hier_router.CellRoutePlans`), so only nets —
  indeed only tree-growth steps — incident to changed instances run a
  live maze search.  Because routing is deterministic and every replayed
  step is validated against the new grid, a patched macro is
  byte-identical to what a cold solve of the same spec would produce;
  the regression suite and ``make template-smoke`` assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Tuple

from repro.physical.artifacts import artifact_digest

if TYPE_CHECKING:  # circular with macro_library, which indexes templates
    from repro.physical.macro_library import MacroRecord

#: Structural parameters per macro kind: the key fields a template may
#: vary across derivations.  Kinds not listed here are never templated.
STRUCTURAL_PARAMS: Dict[str, Tuple[str, ...]] = {
    "local_array": ("L",),
    "column": ("H", "B"),
}

#: Edit cost charged for swapping the SAR/ADC stack (a ``B`` change):
#: a constant, because the swap touches one instance band regardless of
#: the resolution delta.
SAR_SWAP_COST = 2


def template_params(kind: str, key) -> Optional[Dict[str, int]]:
    """The structural-parameter vector of a macro key, or ``None``.

    Returns ``None`` for kinds without a template definition and for keys
    that do not carry every structural field (future-proofing: such keys
    simply fall back to exact-match reuse).
    """
    names = STRUCTURAL_PARAMS.get(kind)
    if names is None or not isinstance(key, Mapping):
        return None
    try:
        return {name: int(key[name]) for name in names}
    except (KeyError, TypeError, ValueError):
        return None


def family_key(kind: str, key) -> Optional[Dict[str, object]]:
    """The non-structural remainder of a macro key (the template family)."""
    names = STRUCTURAL_PARAMS.get(kind)
    if names is None or not isinstance(key, Mapping):
        return None
    return {name: value for name, value in key.items() if name not in names}


def family_digest(kind: str, fingerprint: str, family: Mapping) -> str:
    """Content address of a template family under one cell library."""
    return artifact_digest("template_family", [kind, fingerprint, family])


def edit_cost(
    kind: str,
    params_a: Mapping[str, int],
    params_b: Mapping[str, int],
    family: Optional[Mapping] = None,
) -> int:
    """Structural distance between two parameter vectors of one family.

    The metric counts the instance bands a patch must touch: local-array
    rows added or dropped for ``local_array`` and row-of-``L`` deltas for
    ``column``, plus a constant for swapping the SAR stack when ``B``
    differs.  Lower is cheaper to derive.
    """
    if kind == "local_array":
        return abs(int(params_a["L"]) - int(params_b["L"]))
    if kind == "column":
        rows_per_local = 1
        if family is not None:
            try:
                rows_per_local = max(1, int(family.get("L", 1)))
            except (TypeError, ValueError):
                rows_per_local = 1
        cost = abs(int(params_a["H"]) - int(params_b["H"])) // rows_per_local
        if int(params_a["B"]) != int(params_b["B"]):
            cost += SAR_SWAP_COST
        return cost
    raise KeyError(f"no edit-cost metric for macro kind {kind!r}")


@dataclass(frozen=True)
class MacroTemplate:
    """A solved macro generalized over its structural parameters.

    Attributes:
        kind: macro family name (``"local_array"``, ``"column"``).
        family_digest: content address of everything the template pins:
            the non-structural key fields and the library fingerprint.
        family: the pinned non-structural key fields.
        params: the structural-parameter vector this record was solved at.
        record: the solved macro, including its recorded route plans.
    """

    kind: str
    family_digest: str
    family: Dict[str, object]
    params: Dict[str, int]
    record: MacroRecord

    @property
    def digest(self) -> str:
        """Content address of the underlying solved macro."""
        return self.record.digest

    def cost_to(self, params: Mapping[str, int]) -> int:
        """Edit cost of deriving ``params`` from this template."""
        return edit_cost(self.kind, self.params, params, self.family)

    def derive(
        self,
        spec,
        patcher: Callable[[object, "MacroTemplate"], Optional[Tuple[object, Dict]]],
    ) -> Optional[Tuple[object, Dict]]:
        """Produce a neighbouring macro for ``spec`` by incremental patch.

        ``patcher`` is the pipeline's builder closure bound to this
        template's recorded route plans; it re-places the delta band and
        replays the plans through the hierarchical router.  Returns the
        patched ``(layout, stats)`` or ``None`` when this template cannot
        patch (no recorded plans — e.g. hydrated from a pre-template
        store payload).
        """
        if self.record.route_plans is None:
            return None
        return patcher(spec, self)


def template_for(
    kind: str, key, fingerprint: str, record: MacroRecord
) -> Optional[MacroTemplate]:
    """Wrap a solved macro as a template, or ``None`` when not templatable
    (unknown kind, incomplete key, or a record without route plans)."""
    if record.route_plans is None:
        return None
    params = template_params(kind, key)
    family = family_key(kind, key)
    if params is None or family is None:
        return None
    return MacroTemplate(
        kind=kind,
        family_digest=family_digest(kind, fingerprint, family),
        family=family,
        params=params,
        record=record,
    )


class TemplateIndex:
    """Deterministic nearest-neighbour index of in-memory templates.

    Templates are grouped by ``(kind, family_digest)`` — only same-family
    macros are ever comparable — and queries rank candidates by
    ``(edit_cost, digest)`` so ties break identically in every process.
    """

    def __init__(self) -> None:
        self._by_family: Dict[Tuple[str, str], Dict[str, MacroTemplate]] = {}

    def add(self, template: MacroTemplate) -> None:
        """Register a template (idempotent per macro digest)."""
        group = self._by_family.setdefault(
            (template.kind, template.family_digest), {}
        )
        group.setdefault(template.digest, template)

    def nearest(
        self,
        kind: str,
        family: str,
        params: Mapping[str, int],
        exclude_digest: Optional[str] = None,
    ) -> Optional[MacroTemplate]:
        """The cheapest-to-patch template of a family, or ``None``."""
        group = self._by_family.get((kind, family))
        if not group:
            return None
        best: Optional[Tuple[int, str, MacroTemplate]] = None
        for digest, template in group.items():
            if digest == exclude_digest:
                continue
            candidate = (template.cost_to(params), digest, template)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        return best[2] if best is not None else None

    def templates(self) -> List[MacroTemplate]:
        """Every registered template, grouped by family."""
        return [
            template
            for group in self._by_family.values()
            for template in group.values()
        ]

    def __len__(self) -> int:
        return sum(len(group) for group in self._by_family.values())
