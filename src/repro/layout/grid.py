"""Placement and routing grids (paper Figure 3).

The EasyACIM placer works on a partitioned 2-D placement grid and the
router on a 3-D grid (x, y, layer) whose layers alternate preferred
directions.  Both grids are deliberately simple, dense structures: the
macro floorplans produced by the template-based flow are regular, so dense
grids are both fast enough and easy to reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import LayoutError
from repro.layout.geometry import Point, Rect
from repro.technology.layers import MetalDirection


@dataclass(frozen=True, order=True)
class GridNode:
    """A node of the 3-D routing grid: column, row and routing-layer index."""

    x: int
    y: int
    layer: int

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.x, self.y, self.layer)


class PlacementGrid:
    """A uniform 2-D placement grid over a region.

    Cells (placeable objects) occupy rectangular ranges of grid sites.  The
    grid tracks occupancy so the simulated-annealing placer can quickly test
    move legality.
    """

    def __init__(self, region: Rect, site_width: int, site_height: int) -> None:
        if site_width <= 0 or site_height <= 0:
            raise LayoutError("placement grid sites must have positive size")
        if region.width < site_width or region.height < site_height:
            raise LayoutError("placement region smaller than one site")
        self.region = region
        self.site_width = site_width
        self.site_height = site_height
        self.columns = region.width // site_width
        self.rows = region.height // site_height
        self._occupancy: Dict[Tuple[int, int], str] = {}

    # -- coordinate conversion -------------------------------------------

    def site_origin(self, column: int, row: int) -> Point:
        """Lower-left dbu coordinate of a grid site."""
        self._check_site(column, row)
        return Point(
            self.region.x_lo + column * self.site_width,
            self.region.y_lo + row * self.site_height,
        )

    def site_of(self, point: Point) -> Tuple[int, int]:
        """Grid site containing a dbu point (clamped to the region)."""
        column = (point.x - self.region.x_lo) // self.site_width
        row = (point.y - self.region.y_lo) // self.site_height
        column = max(0, min(self.columns - 1, column))
        row = max(0, min(self.rows - 1, row))
        return (column, row)

    def _check_site(self, column: int, row: int) -> None:
        if not (0 <= column < self.columns and 0 <= row < self.rows):
            raise LayoutError(
                f"site ({column}, {row}) outside grid "
                f"{self.columns}x{self.rows}"
            )

    # -- occupancy ---------------------------------------------------------

    def sites_for(self, column: int, row: int, span_x: int, span_y: int) -> Iterator[Tuple[int, int]]:
        """Iterate the sites covered by an object of span (span_x, span_y)."""
        if span_x <= 0 or span_y <= 0:
            raise LayoutError("object span must be positive")
        self._check_site(column, row)
        self._check_site(column + span_x - 1, row + span_y - 1)
        for dx in range(span_x):
            for dy in range(span_y):
                yield (column + dx, row + dy)

    def can_place(self, column: int, row: int, span_x: int, span_y: int,
                  ignore: Optional[str] = None) -> bool:
        """True if an object of the given span fits at (column, row)."""
        if column < 0 or row < 0:
            return False
        if column + span_x > self.columns or row + span_y > self.rows:
            return False
        for site in self.sites_for(column, row, span_x, span_y):
            owner = self._occupancy.get(site)
            if owner is not None and owner != ignore:
                return False
        return True

    def place(self, name: str, column: int, row: int, span_x: int, span_y: int) -> None:
        """Mark the covered sites as occupied by ``name``."""
        if not self.can_place(column, row, span_x, span_y, ignore=name):
            raise LayoutError(f"cannot place {name!r} at ({column}, {row})")
        for site in self.sites_for(column, row, span_x, span_y):
            self._occupancy[site] = name

    def remove(self, name: str) -> None:
        """Free every site occupied by ``name``."""
        for site in [s for s, owner in self._occupancy.items() if owner == name]:
            del self._occupancy[site]

    def occupied_sites(self, name: Optional[str] = None) -> Set[Tuple[int, int]]:
        """Sites occupied by ``name`` (or by anything when ``name`` is None)."""
        if name is None:
            return set(self._occupancy)
        return {site for site, owner in self._occupancy.items() if owner == name}

    def utilization(self) -> float:
        """Fraction of grid sites currently occupied."""
        return len(self._occupancy) / float(self.columns * self.rows)


class RoutingGrid:
    """A 3-D grid-based routing graph (paper Figure 3, right).

    Nodes are (column, row, layer-index) triples; edges connect neighbouring
    nodes along each layer's preferred direction plus vias between adjacent
    layers.  Obstacles mark nodes the router must avoid (existing cell metal
    and previously routed nets).
    """

    def __init__(
        self,
        region: Rect,
        layers,
        pitch: Optional[int] = None,
        allow_off_direction: bool = False,
    ) -> None:
        """Create a routing grid.

        Args:
            region: routable region in dbu.
            layers: ordered routing layers (list of
                :class:`repro.technology.layers.Layer`).
            pitch: grid pitch in dbu; defaults to the coarsest layer pitch.
            allow_off_direction: when True, wrong-direction edges are allowed
                (with a cost penalty applied by the router).
        """
        layers = list(layers)
        if not layers:
            raise LayoutError("routing grid needs at least one layer")
        self.region = region
        self.layers = layers
        self.pitch = pitch or max(layer.pitch or 1 for layer in layers)
        if self.pitch <= 0:
            raise LayoutError("routing pitch must be positive")
        self.columns = max(1, region.width // self.pitch + 1)
        self.rows = max(1, region.height // self.pitch + 1)
        self.allow_off_direction = allow_off_direction
        # Obstacle membership is kept as packed integer keys
        # ((layer * rows + y) * columns + x): the hot add/lookup paths run
        # orders of magnitude more often than anything else on the grid,
        # and hashing a small int costs a fraction of a dataclass hash.
        self._obstacles: Set[int] = set()
        self._capacity_used: Dict[GridNode, int] = {}

    # -- coordinate conversion -------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def node_count(self) -> int:
        """Total number of grid nodes."""
        return self.columns * self.rows * self.num_layers

    def in_bounds(self, node: GridNode) -> bool:
        """True if a node index is inside the grid."""
        return (0 <= node.x < self.columns and 0 <= node.y < self.rows
                and 0 <= node.layer < self.num_layers)

    def node_to_point(self, node: GridNode) -> Point:
        """dbu coordinate of a grid node."""
        return Point(
            self.region.x_lo + node.x * self.pitch,
            self.region.y_lo + node.y * self.pitch,
        )

    def point_to_node(self, point: Point, layer: int = 0) -> GridNode:
        """Nearest grid node to a dbu point on ``layer`` (clamped to bounds)."""
        x = int(round((point.x - self.region.x_lo) / self.pitch))
        y = int(round((point.y - self.region.y_lo) / self.pitch))
        x = max(0, min(self.columns - 1, x))
        y = max(0, min(self.rows - 1, y))
        layer = max(0, min(self.num_layers - 1, layer))
        return GridNode(x, y, layer)

    # -- obstacles ---------------------------------------------------------

    def _pack(self, node: GridNode) -> int:
        """Packed set key of an in-bounds node (see ``_obstacles``)."""
        return (node.layer * self.rows + node.y) * self.columns + node.x

    def add_obstacle(self, node: GridNode) -> None:
        """Block a single node."""
        if self.in_bounds(node):
            self._obstacles.add(self._pack(node))

    def add_obstacle_rect(self, layer_index: int, rect: Rect, margin: int = 0) -> int:
        """Block every node on ``layer_index`` covered by ``rect`` (+margin).

        Returns the number of nodes blocked.  The covered node-index
        ranges are computed directly (a node at ``origin + i * pitch``
        lies inside the rect iff ``ceil`` / ``floor`` of the boundary
        offsets bracket ``i``), so large blockages cost one set insert
        per node instead of a point-containment test each.
        """
        expanded = rect.expanded(margin)
        pitch = self.pitch
        x_start = max(0, -((self.region.x_lo - expanded.x_lo) // pitch))
        x_end = min(self.columns - 1, (expanded.x_hi - self.region.x_lo) // pitch)
        y_start = max(0, -((self.region.y_lo - expanded.y_lo) // pitch))
        y_end = min(self.rows - 1, (expanded.y_hi - self.region.y_lo) // pitch)
        if x_start > x_end or y_start > y_end:
            return 0
        update = self._obstacles.update
        columns = self.columns
        for y in range(y_start, y_end + 1):
            row_base = (layer_index * self.rows + y) * columns
            update(range(row_base + x_start, row_base + x_end + 1))
        return (x_end - x_start + 1) * (y_end - y_start + 1)

    def clear_obstacle(self, node: GridNode) -> None:
        """Unblock a node (used to open pin access points)."""
        self._obstacles.discard(self._pack(node))

    def is_blocked(self, node: GridNode) -> bool:
        """True if an (in-bounds) node is unavailable to the router."""
        return self._pack(node) in self._obstacles

    def obstacle_count(self) -> int:
        """Number of blocked nodes."""
        return len(self._obstacles)

    # -- neighbourhood ------------------------------------------------------

    def neighbors(self, node: GridNode) -> Iterator[Tuple[GridNode, float]]:
        """Yield (neighbor, cost) pairs for the router.

        In-layer moves follow the layer's preferred direction (or any
        direction at a penalty when ``allow_off_direction`` is set); vertical
        moves (vias) connect adjacent layers at a higher cost, matching the
        VIA UP / VIA DOWN edges of the paper's 3-D routing grid.
        """
        layer = self.layers[node.layer]
        direction = layer.direction
        straight_cost = 1.0
        off_cost = 2.5
        via_cost = 4.0

        horizontal = [(1, 0), (-1, 0)]
        vertical = [(0, 1), (0, -1)]
        if direction is MetalDirection.HORIZONTAL:
            preferred, off = horizontal, vertical
        elif direction is MetalDirection.VERTICAL:
            preferred, off = vertical, horizontal
        else:
            preferred, off = horizontal + vertical, []

        for dx, dy in preferred:
            candidate = GridNode(node.x + dx, node.y + dy, node.layer)
            if self.in_bounds(candidate) and not self.is_blocked(candidate):
                yield candidate, straight_cost
        if self.allow_off_direction:
            for dx, dy in off:
                candidate = GridNode(node.x + dx, node.y + dy, node.layer)
                if self.in_bounds(candidate) and not self.is_blocked(candidate):
                    yield candidate, off_cost
        for dl in (1, -1):
            candidate = GridNode(node.x, node.y, node.layer + dl)
            if self.in_bounds(candidate) and not self.is_blocked(candidate):
                yield candidate, via_cost
