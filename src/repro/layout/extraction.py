"""Post-layout parasitic extraction (wire RC estimation).

The paper calibrates its estimation model with post-layout simulation; the
reproduction's equivalent closes the loop from the *generated* layouts back
into the model: this module walks the routed wires of a layout cell, sums
per-net wire length, capacitance and resistance from the technology's
per-layer constants, and produces a :class:`ParasiticReport` that
:mod:`repro.model.backannotate` uses to refine the timing (settling time
constant) and energy (switched wire capacitance) estimates.

The extractor is geometric, not field-solver accurate: capacitance is
length times the layer's per-micron constant, resistance is sheet
resistance times squares, and vias add a fixed per-cut resistance — the
same level of fidelity the estimation model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LayoutError
from repro.layout.layout import LayoutCell
from repro.technology.tech import Technology
from repro.units import dbu_to_um


@dataclass
class NetParasitics:
    """Extracted parasitics of one net.

    Attributes:
        net: net name.
        wirelength_um: total routed wire length in micrometers.
        capacitance: total wire capacitance in farads.
        resistance: end-to-end resistance estimate in ohms (series sum of
            the net's segments; a conservative upper bound for a tree).
        via_count: number of via cuts attributed to the net.
        segments_per_layer: wire length per layer in micrometers.
    """

    net: str
    wirelength_um: float = 0.0
    capacitance: float = 0.0
    resistance: float = 0.0
    via_count: int = 0
    segments_per_layer: Dict[str, float] = field(default_factory=dict)

    def time_constant(self, load_capacitance: float = 0.0) -> float:
        """Elmore-style RC time constant of the net in seconds.

        Args:
            load_capacitance: additional lumped load at the far end (e.g.
                the comparator input or the CDAC bottom plates).
        """
        return self.resistance * (self.capacitance + load_capacitance)


@dataclass
class ParasiticReport:
    """Extraction result for one layout cell.

    Attributes:
        cell_name: the extracted cell.
        nets: per-net parasitics keyed by net name.
        total_wirelength_um: sum over all extracted nets.
        total_capacitance: sum of all wire capacitance in farads.
    """

    cell_name: str
    nets: Dict[str, NetParasitics] = field(default_factory=dict)

    @property
    def total_wirelength_um(self) -> float:
        return sum(net.wirelength_um for net in self.nets.values())

    @property
    def total_capacitance(self) -> float:
        return sum(net.capacitance for net in self.nets.values())

    def net(self, name: str) -> NetParasitics:
        """Parasitics of one net; raises :class:`LayoutError` when absent."""
        try:
            return self.nets[name]
        except KeyError:
            raise LayoutError(
                f"no extracted parasitics for net {name!r} in {self.cell_name!r}"
            )

    def worst_net(self) -> Optional[NetParasitics]:
        """The net with the largest RC product (None when nothing extracted)."""
        if not self.nets:
            return None
        return max(self.nets.values(), key=lambda n: n.time_constant())


class ParasiticExtractor:
    """Extracts wire parasitics from routed layout cells."""

    def __init__(self, technology: Technology) -> None:
        self.technology = technology

    def extract(
        self,
        cell: LayoutCell,
        nets: Optional[List[str]] = None,
        include_children: bool = False,
    ) -> ParasiticReport:
        """Extract per-net wire parasitics from ``cell``.

        Args:
            cell: the layout cell whose own routed shapes are extracted.
            nets: restrict extraction to these nets (default: every named
                net found on routing layers).
            include_children: when True, child-instance shapes are included
                (flattened); by default only the cell's own wires — i.e.
                what the hierarchical router added at this level — count.
        """
        report = ParasiticReport(cell_name=cell.name)
        wanted = set(nets) if nets is not None else None
        shapes = (
            cell.iter_flat_shapes() if include_children else iter(cell.shapes)
        )
        for shape in shapes:
            if shape.net is None:
                continue
            if wanted is not None and shape.net not in wanted:
                continue
            if not self.technology.has_layer(shape.layer):
                continue
            layer = self.technology.layer(shape.layer)
            entry = report.nets.setdefault(shape.net, NetParasitics(net=shape.net))
            if layer.is_routing:
                length_dbu = max(shape.rect.width, shape.rect.height)
                width_dbu = max(1, min(shape.rect.width, shape.rect.height))
                length_um = dbu_to_um(length_dbu)
                entry.wirelength_um += length_um
                entry.capacitance += length_um * layer.capacitance_per_um
                squares = length_dbu / width_dbu
                entry.resistance += squares * layer.sheet_resistance
                entry.segments_per_layer[layer.name] = (
                    entry.segments_per_layer.get(layer.name, 0.0) + length_um
                )
            elif layer.is_via:
                entry.via_count += 1
                via_resistance = self._via_resistance(layer.name)
                entry.resistance += via_resistance
        return report

    def _via_resistance(self, cut_layer_name: str) -> float:
        for via in self.technology.vias:
            if via.cut_layer == cut_layer_name:
                return via.resistance
        return 0.0
