"""Layout cells, shapes, pins and hierarchical instances.

A :class:`LayoutCell` mirrors a netlist :class:`~repro.netlist.circuit.Circuit`
on the physical side: it contains rectangles on technology layers
(:class:`Shape`), named pin shapes (:class:`PinShape`) and placed child
cells (:class:`LayoutInstance`).  The "Std" layout cells of the paper's
template-based flow (manually designed SRAM cells, sense amplifiers, ...)
and fully generated cells use the same representation, which is what makes
the hierarchical placer able to mix them freely (paper Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import LayoutError
from repro.layout.geometry import Orientation, Point, Rect, Transform


@dataclass(frozen=True)
class Shape:
    """A rectangle on a named layer.

    Attributes:
        layer: technology layer name (e.g. ``"M1"``).
        rect: geometry in database units.
        net: optional net name the shape belongs to (used by DRC connectivity
            waiving and by the router to treat existing metal as obstacles).
    """

    layer: str
    rect: Rect
    net: Optional[str] = None


@dataclass(frozen=True)
class PinShape:
    """A named pin with physical geometry on a layer."""

    name: str
    layer: str
    rect: Rect
    direction: str = "inout"

    @property
    def access_point(self) -> Point:
        """The point the router targets when connecting to this pin."""
        return self.rect.center


@dataclass
class LayoutInstance:
    """A placed child cell.

    Attributes:
        name: instance name unique in the parent.
        cell: the referenced :class:`LayoutCell`.
        transform: placement transform of the child in parent coordinates.
    """

    name: str
    cell: "LayoutCell"
    transform: Transform = field(default_factory=Transform)

    def bounding_box(self) -> Optional[Rect]:
        """Bounding box of the placed child in parent coordinates."""
        child_bbox = self.cell.bounding_box()
        if child_bbox is None:
            return None
        return self.transform.apply_rect(child_bbox)

    def pin_access(self, pin_name: str) -> Point:
        """Parent-coordinate access point of a pin of the child cell."""
        pin = self.cell.pin(pin_name)
        return self.transform.apply_point(pin.access_point)


class LayoutCell:
    """A layout cell: shapes, pins and child instances.

    Cells may declare an explicit ``boundary`` (PR boundary) used for
    placement legalisation and area reporting; when absent, the bounding
    box of the contents is used.
    """

    def __init__(self, name: str, boundary: Optional[Rect] = None) -> None:
        if not name:
            raise LayoutError("layout cell name must be non-empty")
        self.name = name
        self.boundary = boundary
        self._shapes: List[Shape] = []
        self._pins: Dict[str, PinShape] = {}
        self._instances: Dict[str, LayoutInstance] = {}

    # -- content ------------------------------------------------------------

    @property
    def shapes(self) -> List[Shape]:
        """Own (non-hierarchical) shapes."""
        return list(self._shapes)

    @property
    def pins(self) -> List[PinShape]:
        """Pin shapes in declaration order."""
        return list(self._pins.values())

    @property
    def instances(self) -> List[LayoutInstance]:
        """Placed child instances in insertion order."""
        return list(self._instances.values())

    def add_shape(self, layer: str, rect: Rect, net: Optional[str] = None) -> Shape:
        """Add a rectangle on ``layer``."""
        shape = Shape(layer, rect, net)
        self._shapes.append(shape)
        return shape

    def add_pin(
        self,
        name: str,
        layer: str,
        rect: Rect,
        direction: str = "inout",
        add_shape: bool = True,
    ) -> PinShape:
        """Declare a pin with physical geometry.

        The pin geometry is also added as an ordinary shape attached to the
        pin's net so DRC and routing see the metal.  Deserializers that
        restore the shape list verbatim pass ``add_shape=False`` so the pin
        metal is not duplicated.
        """
        if name in self._pins:
            raise LayoutError(f"cell {self.name!r}: duplicate pin {name!r}")
        pin = PinShape(name, layer, rect, direction)
        self._pins[name] = pin
        if add_shape:
            self.add_shape(layer, rect, net=name)
        return pin

    def has_pin(self, name: str) -> bool:
        """True when a pin named ``name`` exists."""
        return name in self._pins

    def pin(self, name: str) -> PinShape:
        """Return the pin called ``name``."""
        try:
            return self._pins[name]
        except KeyError:
            raise LayoutError(f"cell {self.name!r} has no pin {name!r}")

    def add_instance(
        self,
        name: str,
        cell: "LayoutCell",
        transform: Optional[Transform] = None,
    ) -> LayoutInstance:
        """Place a child cell."""
        if name in self._instances:
            raise LayoutError(f"cell {self.name!r}: duplicate instance {name!r}")
        if cell is self:
            raise LayoutError(f"cell {self.name!r} cannot instantiate itself")
        instance = LayoutInstance(name, cell, transform or Transform())
        self._instances[name] = instance
        return instance

    def instance(self, name: str) -> LayoutInstance:
        """Return the child instance called ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise LayoutError(f"cell {self.name!r} has no instance {name!r}")

    def move_instance(self, name: str, transform: Transform) -> None:
        """Re-place an existing child instance (used by the placer)."""
        self.instance(name).transform = transform

    # -- geometry queries -----------------------------------------------

    def bounding_box(self) -> Optional[Rect]:
        """Bounding box of the cell.

        When a PR boundary is set it *is* the bounding box (contents are
        expected to stay inside it), which also keeps deep hierarchies cheap
        to query; otherwise the box is computed from shapes and children.
        """
        if self.boundary is not None:
            return self.boundary
        rects: List[Rect] = []
        rects.extend(shape.rect for shape in self._shapes)
        for instance in self._instances.values():
            bbox = instance.bounding_box()
            if bbox is not None:
                rects.append(bbox)
        return Rect.bounding(rects)

    @property
    def width(self) -> int:
        """Width of the cell (boundary if set, else content bounding box)."""
        box = self.boundary or self.bounding_box()
        return box.width if box else 0

    @property
    def height(self) -> int:
        """Height of the cell (boundary if set, else content bounding box)."""
        box = self.boundary or self.bounding_box()
        return box.height if box else 0

    @property
    def area(self) -> int:
        """Area in dbu^2 of the boundary (or content bounding box)."""
        box = self.boundary or self.bounding_box()
        return box.area if box else 0

    def set_boundary_from_contents(self, margin: int = 0) -> Rect:
        """Set the PR boundary to the content bounding box plus a margin."""
        bbox = self.bounding_box()
        if bbox is None:
            raise LayoutError(f"cell {self.name!r} is empty; cannot derive boundary")
        self.boundary = bbox.expanded(margin)
        return self.boundary

    # -- flattening -----------------------------------------------------

    def iter_flat_shapes(
        self,
        transform: Optional[Transform] = None,
        depth: Optional[int] = None,
    ) -> Iterator[Shape]:
        """Yield all shapes of the cell and its children in top coordinates.

        Args:
            transform: transform to apply to everything (top call: identity).
            depth: maximum hierarchy depth to descend (``None`` = unlimited,
                ``0`` = own shapes only).
        """
        top = transform or Transform()
        for shape in self._shapes:
            yield Shape(shape.layer, top.apply_rect(shape.rect), shape.net)
        if depth is not None and depth <= 0:
            return
        next_depth = None if depth is None else depth - 1
        for instance in self._instances.values():
            child_transform = top.compose(instance.transform)
            yield from instance.cell.iter_flat_shapes(child_transform, next_depth)

    def flat_shape_count(self) -> int:
        """Total number of shapes in the fully flattened cell."""
        return sum(1 for _ in self.iter_flat_shapes())

    def instance_count(self, recursive: bool = False) -> int:
        """Number of child instances (optionally counting the full hierarchy)."""
        if not recursive:
            return len(self._instances)
        total = len(self._instances)
        for instance in self._instances.values():
            total += instance.cell.instance_count(recursive=True)
        return total

    def collect_cells(self) -> Dict[str, "LayoutCell"]:
        """Return every distinct cell in the hierarchy, keyed by name."""
        cells: Dict[str, LayoutCell] = {}

        def visit(cell: "LayoutCell") -> None:
            if cell.name in cells:
                if cells[cell.name] is not cell:
                    raise LayoutError(
                        f"two different layout cells share the name {cell.name!r}"
                    )
                return
            cells[cell.name] = cell
            for instance in cell.instances:
                visit(instance.cell)

        visit(self)
        return cells

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LayoutCell(name={self.name!r}, shapes={len(self._shapes)}, "
            f"pins={len(self._pins)}, instances={len(self._instances)})"
        )
