"""A lightweight design-rule checker over flattened layout geometry.

The checker evaluates the technology's :class:`~repro.technology.rules.DesignRuleSet`
against the flattened shapes of a :class:`~repro.layout.layout.LayoutCell`:

* minimum width (per-layer, both dimensions of every rectangle),
* minimum same-layer spacing between shapes on different nets,
* minimum area.

Enclosure/extension rules are validated structurally when vias are created
by the router, so they are not re-checked geometrically here.  The goal is
not sign-off completeness but catching the classes of errors the automated
placer and router could realistically introduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DRCError
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell, Shape
from repro.technology.rules import RuleType
from repro.technology.tech import Technology


@dataclass(frozen=True)
class DRCViolation:
    """A single design-rule violation.

    Attributes:
        rule: human-readable rule description.
        layer: layer the violation occurred on.
        location: rectangle marking the offending geometry.
        measured: measured value (dbu or dbu^2).
        required: required value (dbu or dbu^2).
    """

    rule: str
    layer: str
    location: Rect
    measured: int
    required: int

    def describe(self) -> str:
        """One-line report entry."""
        return (
            f"{self.rule} on {self.layer} at "
            f"({self.location.x_lo},{self.location.y_lo}): "
            f"measured {self.measured}, required {self.required}"
        )

    def as_dict(self) -> dict:
        """Serializable record: rule name plus the offending coordinates."""
        return {
            "rule": self.rule,
            "layer": self.layer,
            "x_lo": self.location.x_lo,
            "y_lo": self.location.y_lo,
            "x_hi": self.location.x_hi,
            "y_hi": self.location.y_hi,
            "measured": self.measured,
            "required": self.required,
        }


class DRCChecker:
    """Evaluates width/spacing/area rules on flattened layouts."""

    def __init__(self, technology: Technology, spacing_window: int = 2000) -> None:
        """Create a checker.

        Args:
            technology: the technology whose rules should be checked.
            spacing_window: only shape pairs whose bounding boxes are within
                this many dbu of each other are compared for spacing; this
                bounds the quadratic pair check to local neighbourhoods.
        """
        self.technology = technology
        self.spacing_window = spacing_window

    # -- public API --------------------------------------------------------

    def check(
        self, cell: LayoutCell, max_violations: Optional[int] = None
    ) -> List[DRCViolation]:
        """Run all supported checks on ``cell`` and return the violations.

        Every rule reports *all* of its violations — a rule that fires on
        one shape never hides later shapes or later rules.  The optional
        ``max_violations`` only truncates the returned list (for bounded
        reports), it does not skip checks.
        """
        violations: List[DRCViolation] = []
        for group in self._iter_violation_groups(cell):
            violations.extend(group)
        if max_violations is not None:
            return violations[:max_violations]
        return violations

    def _iter_violation_groups(self, cell: LayoutCell):
        """Yield each (rule, layer) group's complete violation list."""
        shapes_by_layer = self._flatten_by_layer(cell)
        for layer, shapes in shapes_by_layer.items():
            yield self._check_width(layer, shapes)
            yield self._check_area(layer, shapes)
            yield self._check_spacing(layer, shapes)

    def is_clean(self, cell: LayoutCell) -> bool:
        """True when no violations are found.

        Short-circuits at the first offending rule/layer group instead of
        scanning the whole layout, so rejection stays cheap on dirty
        layouts.
        """
        return not any(self._iter_violation_groups(cell))

    def assert_clean(self, cell: LayoutCell) -> None:
        """Raise a :class:`~repro.errors.DRCError` listing every violation.

        The error's ``as_dict()`` carries the rule name and offending
        shape coordinates of each violation, so JSON consumers get the
        complete report.
        """
        violations = self.check(cell)
        if violations:
            summary = summarize_violations(violations)
            counts = ", ".join(
                f"{count}x {rule}" for rule, count in sorted(summary.items())
            )
            raise DRCError(
                f"layout {cell.name!r} has {len(violations)} "
                f"DRC violation(s): {counts}",
                violations=violations,
            )

    # -- individual checks ---------------------------------------------------

    def _check_width(self, layer: str, shapes: List[Shape]) -> List[DRCViolation]:
        min_width = self.technology.rules.min_width(layer)
        if min_width <= 0:
            return []
        violations = []
        for shape in shapes:
            rect = shape.rect
            if rect.is_degenerate():
                continue
            measured = min(rect.width, rect.height)
            if measured < min_width:
                violations.append(DRCViolation(
                    rule="min_width", layer=layer, location=rect,
                    measured=measured, required=min_width,
                ))
        return violations

    def _check_area(self, layer: str, shapes: List[Shape]) -> List[DRCViolation]:
        min_area = self.technology.rules.min_area(layer)
        if min_area <= 0:
            return []
        violations = []
        for shape in shapes:
            rect = shape.rect
            if rect.is_degenerate():
                continue
            if rect.area < min_area:
                violations.append(DRCViolation(
                    rule="min_area", layer=layer, location=rect,
                    measured=rect.area, required=min_area,
                ))
        return violations

    def _check_spacing(self, layer: str, shapes: List[Shape]) -> List[DRCViolation]:
        min_spacing = self.technology.rules.min_spacing(layer)
        if min_spacing <= 0 or len(shapes) < 2:
            return []
        violations = []
        # Sweep by x to limit the pair comparisons to a local window.
        ordered = sorted(shapes, key=lambda s: s.rect.x_lo)
        for i, shape_a in enumerate(ordered):
            for shape_b in ordered[i + 1:]:
                if shape_b.rect.x_lo - shape_a.rect.x_hi > self.spacing_window:
                    break
                if self._same_net(shape_a, shape_b):
                    continue
                if shape_a.rect.overlaps(shape_b.rect):
                    # Overlapping shapes on different nets are shorts, which
                    # the router prevents; report as zero spacing.
                    violations.append(DRCViolation(
                        rule="min_spacing", layer=layer,
                        location=shape_a.rect.union(shape_b.rect),
                        measured=0, required=min_spacing,
                    ))
                    continue
                spacing = shape_a.rect.spacing_to(shape_b.rect)
                if 0 < spacing < min_spacing:
                    violations.append(DRCViolation(
                        rule="min_spacing", layer=layer,
                        location=shape_a.rect.union(shape_b.rect),
                        measured=spacing, required=min_spacing,
                    ))
        return violations

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _same_net(shape_a: Shape, shape_b: Shape) -> bool:
        """Shapes on the same named net never violate spacing rules here."""
        return (
            shape_a.net is not None
            and shape_b.net is not None
            and shape_a.net == shape_b.net
        )

    def _flatten_by_layer(self, cell: LayoutCell) -> Dict[str, List[Shape]]:
        shapes_by_layer: Dict[str, List[Shape]] = {}
        for shape in cell.iter_flat_shapes():
            shapes_by_layer.setdefault(shape.layer, []).append(shape)
        return shapes_by_layer


def summarize_violations(violations: List[DRCViolation]) -> Dict[str, int]:
    """Count violations by rule type, for compact reporting."""
    summary: Dict[str, int] = {}
    for violation in violations:
        summary[violation.rule] = summary.get(violation.rule, 0) + 1
    return summary


def check_own_level_shorts(
    technology: Technology, cell: LayoutCell
) -> List[DRCViolation]:
    """Spacing check on a cell's *own* shapes only, via grid bucketing.

    This is the fast exactness gate for template-derived macros: replaying
    recorded route plans re-emits wire geometry at the cell's own level, so
    the only rule class an invalid replay could break is same-layer spacing
    between different nets there (child cells are untouched, and wire
    widths/areas come from the same emitter as a cold solve).  Shapes are
    hashed into buckets sized by the spacing window, which keeps the pair
    check linear even for the tall, narrow column macros where the
    checker's x-sweep degenerates to quadratic.
    """
    violations: List[DRCViolation] = []
    by_layer: Dict[str, List[Shape]] = {}
    for shape in cell.shapes:
        by_layer.setdefault(shape.layer, []).append(shape)
    for layer, shapes in by_layer.items():
        min_spacing = technology.rules.min_spacing(layer)
        if min_spacing <= 0 or len(shapes) < 2:
            continue
        bucket = max(min_spacing * 4, 400)
        grid: Dict[Tuple[int, int], List[int]] = {}
        for index, shape in enumerate(shapes):
            rect = shape.rect.expanded(min_spacing)
            for bx in range(rect.x_lo // bucket, rect.x_hi // bucket + 1):
                for by in range(rect.y_lo // bucket, rect.y_hi // bucket + 1):
                    grid.setdefault((bx, by), []).append(index)
        seen: set = set()
        for members in grid.values():
            for i, index_a in enumerate(members):
                for index_b in members[i + 1:]:
                    pair = (index_a, index_b)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    shape_a, shape_b = shapes[index_a], shapes[index_b]
                    if DRCChecker._same_net(shape_a, shape_b):
                        continue
                    if shape_a.rect.overlaps(shape_b.rect):
                        violations.append(DRCViolation(
                            rule="min_spacing", layer=layer,
                            location=shape_a.rect.union(shape_b.rect),
                            measured=0, required=min_spacing,
                        ))
                        continue
                    spacing = shape_a.rect.spacing_to(shape_b.rect)
                    if 0 < spacing < min_spacing:
                        violations.append(DRCViolation(
                            rule="min_spacing", layer=layer,
                            location=shape_a.rect.union(shape_b.rect),
                            measured=spacing, required=min_spacing,
                        ))
    return violations
