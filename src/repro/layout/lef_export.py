"""LEF (Library Exchange Format) abstract export.

Generated ACIM macros are meant to be dropped into larger SoCs; the
standard hand-off for that is a LEF abstract: the macro's outline, its pin
shapes on the routing layers, and obstruction geometry covering the
internals.  This module writes such abstracts for any
:class:`~repro.layout.layout.LayoutCell`, plus the technology-header LEF
(layer/via definitions) that placement-and-routing tools expect alongside.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.errors import LayoutError
from repro.layout.layout import LayoutCell
from repro.technology.layers import LayerType, MetalDirection
from repro.technology.tech import Technology
from repro.units import DBU_PER_UM


def _um(value_dbu: int) -> str:
    """Format a dbu coordinate as LEF micrometers."""
    return f"{value_dbu / DBU_PER_UM:.4f}"


def write_tech_lef(technology: Technology, path: Union[str, Path]) -> str:
    """Write the technology-header LEF (layers and vias).

    Only the attributes consumed by standard P&R tools are emitted: layer
    type, preferred direction, pitch, default width and spacing for routing
    layers, and cut-layer definitions with a default via rule per pair.
    """
    lines: List[str] = [
        "VERSION 5.8 ;",
        "BUSBITCHARS \"[]\" ;",
        "DIVIDERCHAR \"/\" ;",
        f"UNITS",
        f"  DATABASE MICRONS {DBU_PER_UM} ;",
        "END UNITS",
        "",
        f"MANUFACTURINGGRID {technology.manufacturing_grid / DBU_PER_UM:.4f} ;",
        "",
    ]
    for layer in technology.layers:
        if layer.layer_type is LayerType.METAL and layer.is_routing:
            direction = (
                "HORIZONTAL" if layer.direction is MetalDirection.HORIZONTAL
                else "VERTICAL"
            )
            lines += [
                f"LAYER {layer.name}",
                "  TYPE ROUTING ;",
                f"  DIRECTION {direction} ;",
                f"  PITCH {_um(layer.pitch)} ;",
                f"  WIDTH {_um(layer.default_width or layer.min_width)} ;",
                f"  SPACING {_um(layer.min_spacing)} ;",
                f"END {layer.name}",
                "",
            ]
        elif layer.is_via:
            lines += [
                f"LAYER {layer.name}",
                "  TYPE CUT ;",
                f"  SPACING {_um(layer.min_spacing)} ;",
                f"END {layer.name}",
                "",
            ]
    for via in technology.vias:
        lower, upper = via.footprint()
        half_cut = via.cut_size // 2
        half_lower = lower // 2
        half_upper = upper // 2
        lines += [
            f"VIA {via.name} DEFAULT",
            f"  LAYER {via.lower_layer} ;",
            f"    RECT {_um(-half_lower)} {_um(-half_lower)} "
            f"{_um(half_lower)} {_um(half_lower)} ;",
            f"  LAYER {via.cut_layer} ;",
            f"    RECT {_um(-half_cut)} {_um(-half_cut)} "
            f"{_um(half_cut)} {_um(half_cut)} ;",
            f"  LAYER {via.upper_layer} ;",
            f"    RECT {_um(-half_upper)} {_um(-half_upper)} "
            f"{_um(half_upper)} {_um(half_upper)} ;",
            f"END {via.name}",
            "",
        ]
    lines.append("END LIBRARY")
    text = "\n".join(lines) + "\n"
    Path(path).write_text(text)
    return text


def write_macro_lef(
    cell: LayoutCell,
    technology: Technology,
    path: Union[str, Path],
    site_name: str = "acim_site",
    obstruction_layers: Optional[Iterable[str]] = None,
) -> str:
    """Write a LEF abstract of ``cell``.

    Pins keep their physical rectangles (only those on known routing layers
    are exported); everything else becomes per-layer OBS obstruction
    covering the macro outline, which is how hardened analog macros are
    normally abstracted.
    """
    boundary = cell.boundary or cell.bounding_box()
    if boundary is None:
        raise LayoutError(f"cell {cell.name!r} is empty; cannot write LEF")
    origin_x, origin_y = boundary.x_lo, boundary.y_lo
    width, height = boundary.width, boundary.height
    obstruction_layers = list(obstruction_layers or
                              [layer.name for layer in technology.routing_layers[:3]])

    lines: List[str] = [
        "VERSION 5.8 ;",
        "BUSBITCHARS \"[]\" ;",
        f"MACRO {cell.name}",
        "  CLASS BLOCK ;",
        f"  ORIGIN {_um(-origin_x)} {_um(-origin_y)} ;",
        f"  FOREIGN {cell.name} {_um(origin_x)} {_um(origin_y)} ;",
        f"  SIZE {_um(width)} BY {_um(height)} ;",
        "  SYMMETRY X Y ;",
        f"  SITE {site_name} ;",
    ]
    direction_map = {
        "input": "INPUT",
        "output": "OUTPUT",
        "inout": "INOUT",
        "supply": "INOUT",
    }
    for pin in cell.pins:
        if not technology.has_layer(pin.layer):
            continue
        use = "POWER" if pin.name in ("VDD", "VCM") else (
            "GROUND" if pin.name == "VSS" else "SIGNAL")
        lines += [
            f"  PIN {pin.name}",
            f"    DIRECTION {direction_map.get(pin.direction, 'INOUT')} ;",
            f"    USE {use} ;",
            "    PORT",
            f"      LAYER {pin.layer} ;",
            f"        RECT {_um(pin.rect.x_lo)} {_um(pin.rect.y_lo)} "
            f"{_um(pin.rect.x_hi)} {_um(pin.rect.y_hi)} ;",
            "    END",
            f"  END {pin.name}",
        ]
    lines.append("  OBS")
    for layer_name in obstruction_layers:
        lines += [
            f"    LAYER {layer_name} ;",
            f"      RECT {_um(boundary.x_lo)} {_um(boundary.y_lo)} "
            f"{_um(boundary.x_hi)} {_um(boundary.y_hi)} ;",
        ]
    lines.append("  END")
    lines.append(f"END {cell.name}")
    lines.append("")
    lines.append("END LIBRARY")
    text = "\n".join(lines) + "\n"
    Path(path).write_text(text)
    return text
