"""Integer geometry primitives: points, rectangles and transforms.

Everything is axis-aligned and integer-valued (database units), matching
how real layout databases store geometry.  The :class:`Transform` supports
the eight Manhattan orientations used by layout instances (R0/R90/R180/R270
and their mirrored variants), which is all a standard-cell/array-style
placer needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


class Orientation(enum.Enum):
    """The eight Manhattan orientations of a placed instance."""

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"    # mirror about the x-axis (flip vertically)
    MY = "MY"    # mirror about the y-axis (flip horizontally)
    MXR90 = "MXR90"
    MYR90 = "MYR90"

    @property
    def swaps_axes(self) -> bool:
        """True when width and height exchange under this orientation."""
        return self in (Orientation.R90, Orientation.R270,
                        Orientation.MXR90, Orientation.MYR90)


@dataclass(frozen=True, order=True)
class Point:
    """An integer point in database units."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return this point shifted by (dx, dy)."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> int:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def as_tuple(self) -> Tuple[int, int]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned integer rectangle defined by two corners.

    The constructor normalises the corners so ``x_lo <= x_hi`` and
    ``y_lo <= y_hi`` always hold.  Zero-width or zero-height rectangles are
    allowed (they are useful as degenerate pin markers) but negative extents
    are impossible by construction.
    """

    x_lo: int
    y_lo: int
    x_hi: int
    y_hi: int

    def __post_init__(self) -> None:
        # Normalise both axes so swapped corner inputs still yield a valid box.
        x_lo, x_hi = sorted((self.x_lo, self.x_hi))
        y_lo, y_hi = sorted((self.y_lo, self.y_hi))
        object.__setattr__(self, "x_lo", x_lo)
        object.__setattr__(self, "x_hi", x_hi)
        object.__setattr__(self, "y_lo", y_lo)
        object.__setattr__(self, "y_hi", y_hi)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_size(cls, x: int, y: int, width: int, height: int) -> "Rect":
        """Build a rectangle from its lower-left corner and size."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(x, y, x + width, y + height)

    @classmethod
    def from_center(cls, center: Point, width: int, height: int) -> "Rect":
        """Build a rectangle centred on ``center``."""
        half_w, half_h = width // 2, height // 2
        return cls(center.x - half_w, center.y - half_h,
                   center.x - half_w + width, center.y - half_h + height)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> Optional["Rect"]:
        """Bounding box of a collection of rectangles, or ``None`` if empty."""
        rects = list(rects)
        if not rects:
            return None
        return cls(
            min(r.x_lo for r in rects),
            min(r.y_lo for r in rects),
            max(r.x_hi for r in rects),
            max(r.y_hi for r in rects),
        )

    # -- basic properties -------------------------------------------------

    @property
    def width(self) -> int:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> int:
        return self.y_hi - self.y_lo

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_lo + self.x_hi) // 2, (self.y_lo + self.y_hi) // 2)

    def is_degenerate(self) -> bool:
        """True when the rectangle has zero width or height."""
        return self.width == 0 or self.height == 0

    # -- relations ----------------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` lies inside or on the border."""
        return (self.x_lo <= point.x <= self.x_hi
                and self.y_lo <= point.y <= self.y_hi)

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside (or on the border of) this rect."""
        return (self.x_lo <= other.x_lo and other.x_hi <= self.x_hi
                and self.y_lo <= other.y_lo and other.y_hi <= self.y_hi)

    def overlaps(self, other: "Rect") -> bool:
        """True if the interiors of the two rectangles intersect."""
        return (self.x_lo < other.x_hi and other.x_lo < self.x_hi
                and self.y_lo < other.y_hi and other.y_lo < self.y_hi)

    def touches(self, other: "Rect") -> bool:
        """True if the rectangles overlap or share an edge/corner."""
        return (self.x_lo <= other.x_hi and other.x_lo <= self.x_hi
                and self.y_lo <= other.y_hi and other.y_lo <= self.y_hi)

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.touches(other):
            return None
        return Rect(
            max(self.x_lo, other.x_lo),
            max(self.y_lo, other.y_lo),
            min(self.x_hi, other.x_hi),
            min(self.y_hi, other.y_hi),
        )

    def spacing_to(self, other: "Rect") -> int:
        """Minimum Manhattan edge-to-edge spacing between two rectangles.

        Returns 0 when the rectangles touch or overlap.
        """
        dx = max(0, max(self.x_lo, other.x_lo) - min(self.x_hi, other.x_hi))
        dy = max(0, max(self.y_lo, other.y_lo) - min(self.y_hi, other.y_hi))
        if dx > 0 and dy > 0:
            return dx + dy
        return max(dx, dy)

    # -- derived rectangles ---------------------------------------------

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return this rectangle shifted by (dx, dy)."""
        return Rect(self.x_lo + dx, self.y_lo + dy, self.x_hi + dx, self.y_hi + dy)

    def expanded(self, margin: int) -> "Rect":
        """Return this rectangle grown (or shrunk for negative margin) on all sides."""
        return Rect(self.x_lo - margin, self.y_lo - margin,
                    self.x_hi + margin, self.y_hi + margin)

    def union(self, other: "Rect") -> "Rect":
        """Bounding box of this rectangle and ``other``."""
        return Rect(min(self.x_lo, other.x_lo), min(self.y_lo, other.y_lo),
                    max(self.x_hi, other.x_hi), max(self.y_hi, other.y_hi))


@dataclass(frozen=True)
class Transform:
    """A placement transform: Manhattan orientation followed by translation.

    The orientation is applied about the origin of the child cell, then the
    translation moves the transformed origin to ``(dx, dy)`` in the parent.
    """

    dx: int = 0
    dy: int = 0
    orientation: Orientation = Orientation.R0

    def apply_point(self, point: Point) -> Point:
        """Transform a point from child coordinates into parent coordinates."""
        x, y = point.x, point.y
        o = self.orientation
        if o is Orientation.R0:
            tx, ty = x, y
        elif o is Orientation.R90:
            tx, ty = -y, x
        elif o is Orientation.R180:
            tx, ty = -x, -y
        elif o is Orientation.R270:
            tx, ty = y, -x
        elif o is Orientation.MX:
            tx, ty = x, -y
        elif o is Orientation.MY:
            tx, ty = -x, y
        elif o is Orientation.MXR90:
            tx, ty = y, x
        elif o is Orientation.MYR90:
            tx, ty = -y, -x
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unsupported orientation {o}")
        return Point(tx + self.dx, ty + self.dy)

    def apply_rect(self, rect: Rect) -> Rect:
        """Transform a rectangle (result is re-normalised axis-aligned)."""
        p1 = self.apply_point(Point(rect.x_lo, rect.y_lo))
        p2 = self.apply_point(Point(rect.x_hi, rect.y_hi))
        return Rect(p1.x, p1.y, p2.x, p2.y)

    def compose(self, inner: "Transform") -> "Transform":
        """Return the transform equivalent to applying ``inner`` then ``self``.

        Only the common case of composing with non-rotating inner transforms
        or applying the outer orientation to the inner translation is
        required by the hierarchical flattener; the composition is exact for
        all Manhattan orientation pairs because they form a closed group.
        """
        origin = self.apply_point(Point(inner.dx, inner.dy))
        combined = _COMPOSE_TABLE[(self.orientation, inner.orientation)]
        return Transform(origin.x, origin.y, combined)


def _build_compose_table():
    """Precompute the composition of every Manhattan orientation pair.

    The composed orientation is identified by applying both orientations to
    two probe points and matching the result against each candidate.
    """
    probes = (Point(1, 0), Point(0, 1))
    signatures = {}
    for candidate in Orientation:
        transform = Transform(0, 0, candidate)
        signatures[tuple(transform.apply_point(p) for p in probes)] = candidate
    table = {}
    for outer in Orientation:
        for inner in Orientation:
            outer_t = Transform(0, 0, outer)
            inner_t = Transform(0, 0, inner)
            signature = tuple(
                outer_t.apply_point(inner_t.apply_point(p)) for p in probes
            )
            table[(outer, inner)] = signatures[signature]
    return table


_COMPOSE_TABLE = _build_compose_table()


def hpwl(points: Iterable[Point]) -> int:
    """Half-perimeter wire length of a set of points (paper Figure 3)."""
    points = list(points)
    if len(points) < 2:
        return 0
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
