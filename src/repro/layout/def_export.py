"""A compact DEF-like text exporter for generated macros.

GDSII (see :mod:`repro.layout.gdsii`) carries the full geometry; the DEF
view is a human-readable companion that lists the die area and the placed
component instances with their locations and orientations, which is useful
for reviewing a floorplan without a layout viewer and for diffing
placements in tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.layout.layout import LayoutCell
from repro.units import DBU_PER_UM


def write_def(cell: LayoutCell, path: Union[str, Path], design_name: str = "") -> str:
    """Write a DEF-like description of ``cell`` to ``path``.

    Only the sections needed to review the macro floorplan are emitted:
    DESIGN, UNITS, DIEAREA and COMPONENTS (with placement status, location
    and orientation).

    Returns:
        The generated text (also written to ``path``).
    """
    design = design_name or cell.name
    bbox = cell.boundary or cell.bounding_box()
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {design} ;",
        f"UNITS DISTANCE MICRONS {DBU_PER_UM} ;",
    ]
    if bbox is not None:
        lines.append(
            f"DIEAREA ( {bbox.x_lo} {bbox.y_lo} ) ( {bbox.x_hi} {bbox.y_hi} ) ;"
        )
    instances = cell.instances
    lines.append(f"COMPONENTS {len(instances)} ;")
    for instance in instances:
        transform = instance.transform
        lines.append(
            f"- {instance.name} {instance.cell.name} + PLACED "
            f"( {transform.dx} {transform.dy} ) {transform.orientation.value} ;"
        )
    lines.append("END COMPONENTS")
    lines.append("END DESIGN")
    text = "\n".join(lines) + "\n"
    Path(path).write_text(text)
    return text
