"""Layout database: geometry, cells, grids, DRC and exporters.

This package is the substrate underneath the template-based hierarchical
placer and router (paper section 3.3).  It stores layouts as hierarchies of
:class:`~repro.layout.layout.LayoutCell` objects containing rectangles on
technology layers, pin shapes and transformed child instances, plus:

* placement and 3-D routing grids (paper Figure 3),
* a design-rule checker evaluating the technology's rule set,
* a GDSII binary writer/reader and a DEF-like text exporter.

All coordinates are integer database units (1 dbu = 1 nm).
"""

from repro.layout.geometry import Orientation, Point, Rect, Transform
from repro.layout.layout import LayoutCell, LayoutInstance, PinShape, Shape
from repro.layout.grid import PlacementGrid, RoutingGrid, GridNode
from repro.layout.drc import DRCChecker, DRCViolation
from repro.layout.extraction import NetParasitics, ParasiticExtractor, ParasiticReport
from repro.layout.gdsii import read_gds, write_gds
from repro.layout.def_export import write_def
from repro.layout.lef_export import write_macro_lef, write_tech_lef

__all__ = [
    "Orientation",
    "Point",
    "Rect",
    "Transform",
    "LayoutCell",
    "LayoutInstance",
    "PinShape",
    "Shape",
    "PlacementGrid",
    "RoutingGrid",
    "GridNode",
    "DRCChecker",
    "DRCViolation",
    "NetParasitics",
    "ParasiticExtractor",
    "ParasiticReport",
    "read_gds",
    "write_gds",
    "write_def",
    "write_macro_lef",
    "write_tech_lef",
]
