"""Minimal GDSII stream writer and reader.

The flow's final deliverable is a layout database; GDSII is the industry
interchange format, so the reproduction emits real GDSII binary streams for
the generated ACIM macros.  Only the record subset needed for rectangle
geometry and hierarchical references is implemented:

* structures (``BGNSTR``/``STRNAME``/``ENDSTR``),
* boundaries (rectangles as 5-point polygons) with layer/datatype,
* structure references (``SREF``) with mirroring and 90-degree rotations,
* library header/units/footer.

The reader parses streams produced by :func:`write_gds` back into
:class:`~repro.layout.layout.LayoutCell` hierarchies, which gives the test
suite a round-trip invariant to verify.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import LayoutError
from repro.layout.geometry import Orientation, Point, Rect, Transform
from repro.layout.layout import LayoutCell
from repro.technology.tech import Technology

# GDSII record types used by this implementation.
_HEADER = 0x00
_BGNLIB = 0x01
_LIBNAME = 0x02
_UNITS = 0x03
_ENDLIB = 0x04
_BGNSTR = 0x05
_STRNAME = 0x06
_ENDSTR = 0x07
_BOUNDARY = 0x08
_SREF = 0x0A
_LAYER = 0x0D
_DATATYPE = 0x0E
_XY = 0x10
_ENDEL = 0x11
_SNAME = 0x12
_STRANS = 0x1A
_ANGLE = 0x1C

# GDSII data types.
_NO_DATA = 0x00
_INT16 = 0x02
_INT32 = 0x03
_REAL8 = 0x05
_ASCII = 0x06

#: Default timestamp written into BGNLIB/BGNSTR records (GDSII requires one;
#: a fixed value keeps the output deterministic).
_TIMESTAMP = (2024, 6, 23, 0, 0, 0)

_ORIENTATION_TO_GDS: Dict[Orientation, Tuple[bool, float]] = {
    Orientation.R0: (False, 0.0),
    Orientation.R90: (False, 90.0),
    Orientation.R180: (False, 180.0),
    Orientation.R270: (False, 270.0),
    Orientation.MX: (True, 0.0),
    Orientation.MXR90: (True, 90.0),
    Orientation.MY: (True, 180.0),
    Orientation.MYR90: (True, 270.0),
}

_GDS_TO_ORIENTATION = {value: key for key, value in _ORIENTATION_TO_GDS.items()}


# ---------------------------------------------------------------------------
# Low-level record encoding
# ---------------------------------------------------------------------------


def _record(record_type: int, data_type: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    return struct.pack(">HBB", length, record_type, data_type) + payload


def _record_int16(record_type: int, values: List[int]) -> bytes:
    return _record(record_type, _INT16, struct.pack(f">{len(values)}h", *values))


def _record_bitarray(record_type: int, value: int) -> bytes:
    """Encode a 16-bit flag word (GDSII BITARRAY, used by STRANS)."""
    return _record(record_type, 0x01, struct.pack(">H", value & 0xFFFF))


def _record_int32(record_type: int, values: List[int]) -> bytes:
    return _record(record_type, _INT32, struct.pack(f">{len(values)}i", *values))


def _record_ascii(record_type: int, text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\0"
    return _record(record_type, _ASCII, data)


def _to_real8(value: float) -> bytes:
    """Encode a float as GDSII 8-byte excess-64 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 0
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 0.0625:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B", sign | (exponent + 64)) + mantissa.to_bytes(7, "big")


def _from_real8(data: bytes) -> float:
    if len(data) != 8:
        raise LayoutError("invalid REAL8 field")
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mantissa = int.from_bytes(data[1:], "big") / float(1 << 56)
    return sign * mantissa * (16.0 ** exponent)


def _record_real8(record_type: int, values: List[float]) -> bytes:
    return _record(record_type, _REAL8, b"".join(_to_real8(v) for v in values))


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_gds(
    cell: LayoutCell,
    path: Union[str, Path],
    technology: Technology,
    library_name: str = "EASYACIM",
) -> int:
    """Write ``cell`` and its hierarchy to a GDSII file.

    Layer names are mapped to (layer, datatype) pairs through the
    technology's layer map; shapes on unknown layers raise
    :class:`LayoutError`.

    Returns:
        The number of bytes written.
    """
    stream = bytearray()
    stream += _record_int16(_HEADER, [600])
    stream += _record_int16(_BGNLIB, list(_TIMESTAMP) * 2)
    stream += _record_ascii(_LIBNAME, library_name)
    # User unit = 1 micron expressed in database units; database unit in meters.
    stream += _record_real8(_UNITS, [1e-3, 1e-9])

    for sub_cell in _bottom_up(cell):
        stream += _write_structure(sub_cell, technology)

    stream += _record(_ENDLIB, _NO_DATA)
    data = bytes(stream)
    Path(path).write_bytes(data)
    return len(data)


def _bottom_up(cell: LayoutCell) -> List[LayoutCell]:
    ordered: List[LayoutCell] = []
    visited: Dict[str, LayoutCell] = {}

    def visit(current: LayoutCell) -> None:
        if current.name in visited:
            return
        visited[current.name] = current
        for instance in current.instances:
            visit(instance.cell)
        ordered.append(current)

    visit(cell)
    return ordered


def _write_structure(cell: LayoutCell, technology: Technology) -> bytes:
    stream = bytearray()
    stream += _record_int16(_BGNSTR, list(_TIMESTAMP) * 2)
    stream += _record_ascii(_STRNAME, cell.name)
    for shape in cell.shapes:
        key = technology.layer_map.lookup(shape.layer)
        if key is None:
            raise LayoutError(f"layer {shape.layer!r} missing from layer map")
        gds_layer, gds_datatype = key
        rect = shape.rect
        points = [
            rect.x_lo, rect.y_lo,
            rect.x_hi, rect.y_lo,
            rect.x_hi, rect.y_hi,
            rect.x_lo, rect.y_hi,
            rect.x_lo, rect.y_lo,
        ]
        stream += _record(_BOUNDARY, _NO_DATA)
        stream += _record_int16(_LAYER, [gds_layer])
        stream += _record_int16(_DATATYPE, [gds_datatype])
        stream += _record_int32(_XY, points)
        stream += _record(_ENDEL, _NO_DATA)
    for instance in cell.instances:
        mirror, angle = _ORIENTATION_TO_GDS[instance.transform.orientation]
        stream += _record(_SREF, _NO_DATA)
        stream += _record_ascii(_SNAME, instance.cell.name)
        if mirror or angle:
            stream += _record_bitarray(_STRANS, 0x8000 if mirror else 0)
            if angle:
                stream += _record_real8(_ANGLE, [angle])
        stream += _record_int32(_XY, [instance.transform.dx, instance.transform.dy])
        stream += _record(_ENDEL, _NO_DATA)
    stream += _record(_ENDSTR, _NO_DATA)
    return bytes(stream)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def read_gds(path: Union[str, Path], technology: Technology) -> Dict[str, LayoutCell]:
    """Read a GDSII file produced by :func:`write_gds`.

    Returns a dictionary of layout cells keyed by structure name.  GDS
    layers without a name in the technology's layer map are imported with a
    synthetic ``"GDS<layer>_<datatype>"`` name so no geometry is dropped.
    """
    data = Path(path).read_bytes()
    records = list(_iter_records(data))
    cells: Dict[str, LayoutCell] = {}
    pending_refs: List[Tuple[LayoutCell, str, Transform]] = []

    index = 0
    current: Optional[LayoutCell] = None
    while index < len(records):
        record_type, payload = records[index]
        if record_type == _BGNSTR:
            name_type, name_payload = records[index + 1]
            if name_type != _STRNAME:
                raise LayoutError("BGNSTR not followed by STRNAME")
            current = LayoutCell(name_payload.rstrip(b"\0").decode("ascii"))
            cells[current.name] = current
            index += 2
            continue
        if record_type == _ENDSTR:
            current = None
        elif record_type == _BOUNDARY and current is not None:
            index = _read_boundary(records, index, current, technology)
            continue
        elif record_type == _SREF and current is not None:
            index = _read_sref(records, index, current, pending_refs)
            continue
        index += 1

    for parent, child_name, transform in pending_refs:
        if child_name not in cells:
            raise LayoutError(f"SREF to unknown structure {child_name!r}")
        instance_name = f"{child_name}_{parent.instance_count()}"
        parent.add_instance(instance_name, cells[child_name], transform)
    return cells


def _iter_records(data: bytes):
    offset = 0
    while offset + 4 <= len(data):
        length, record_type, _data_type = struct.unpack_from(">HBB", data, offset)
        if length < 4:
            break
        payload = data[offset + 4: offset + length]
        yield record_type, payload
        offset += length


def _read_boundary(records, index, cell: LayoutCell, technology: Technology) -> int:
    layer_number = 0
    datatype = 0
    points: List[int] = []
    index += 1
    while index < len(records):
        record_type, payload = records[index]
        if record_type == _LAYER:
            layer_number = struct.unpack(">h", payload[:2])[0]
        elif record_type == _DATATYPE:
            datatype = struct.unpack(">h", payload[:2])[0]
        elif record_type == _XY:
            count = len(payload) // 4
            points = list(struct.unpack(f">{count}i", payload))
        elif record_type == _ENDEL:
            index += 1
            break
        index += 1
    if points:
        xs = points[0::2]
        ys = points[1::2]
        rect = Rect(min(xs), min(ys), max(xs), max(ys))
        name = technology.layer_map.reverse_lookup(layer_number, datatype)
        cell.add_shape(name or f"GDS{layer_number}_{datatype}", rect)
    return index


def _read_sref(records, index, cell: LayoutCell, pending_refs) -> int:
    child_name = ""
    mirror = False
    angle = 0.0
    dx = dy = 0
    index += 1
    while index < len(records):
        record_type, payload = records[index]
        if record_type == _SNAME:
            child_name = payload.rstrip(b"\0").decode("ascii")
        elif record_type == _STRANS:
            mirror = bool(struct.unpack(">H", payload[:2])[0] & 0x8000)
        elif record_type == _ANGLE:
            angle = _from_real8(payload[:8])
        elif record_type == _XY:
            dx, dy = struct.unpack(">2i", payload[:8])
        elif record_type == _ENDEL:
            index += 1
            break
        index += 1
    orientation = _GDS_TO_ORIENTATION.get((mirror, angle), Orientation.R0)
    pending_refs.append((cell, child_name, Transform(dx, dy, orientation)))
    return index
