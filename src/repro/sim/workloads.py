"""Workload generators for the behavioral simulator and the applications.

Generators produce (activation, weight) vector pairs with the statistics the
SNR model assumes (binary 1b x 1b as in the paper's evaluation, Gaussian and
sparse variants for the application studies).  :func:`measure_statistics`
closes the loop by estimating the :class:`~repro.model.notation.WorkloadStatistics`
of a generated population, which the tests use to confirm that generators
and analytic assumptions agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.model.notation import WorkloadStatistics


@dataclass
class WorkloadGenerator:
    """A named generator of (activations, weights) vector pairs.

    Attributes:
        name: generator name used in reports.
        statistics: the analytic statistics the generator is meant to follow.
        sampler: callable ``(length, rng) -> (activations, weights)``.
    """

    name: str
    statistics: WorkloadStatistics
    sampler: Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]

    def sample(
        self, length: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one (activations, weights) pair of the requested length."""
        if length < 1:
            raise SimulationError("vector length must be at least 1")
        generator = rng or np.random.default_rng()
        activations, weights = self.sampler(length, generator)
        return np.asarray(activations, float), np.asarray(weights, float)

    def batches(
        self,
        length: int,
        count: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``count`` independent samples."""
        generator = rng or np.random.default_rng()
        for _ in range(count):
            yield self.sample(length, generator)

    def sample_matrix(
        self,
        length: int,
        count: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` samples at once as ``(count, length)`` matrices.

        One sampler call produces the whole trial block — the vectorized
        Monte-Carlo harness consumes perturbation matrices instead of
        per-trial vectors.  (The random stream is consumed in one
        activations block then one weights block, so for a fixed seed the
        values differ from ``count`` sequential :meth:`sample` calls.)
        """
        if length < 1:
            raise SimulationError("vector length must be at least 1")
        if count < 1:
            raise SimulationError("sample count must be at least 1")
        generator = rng or np.random.default_rng()
        activations, weights = self.sampler(count * length, generator)
        return (
            np.asarray(activations, float).reshape(count, length),
            np.asarray(weights, float).reshape(count, length),
        )


def binary_workload(activation_density: float = 0.5) -> WorkloadGenerator:
    """1b x 1b workload: Bernoulli activations, +/-1 weights (paper section 4).

    Args:
        activation_density: probability an activation bit is 1; 0.5 matches
            the statistics assumed by :meth:`WorkloadStatistics.binary`.
    """
    if not 0.0 < activation_density < 1.0:
        raise SimulationError("activation density must be in (0, 1)")
    sigma_x = float(np.sqrt(activation_density * (1.0 - activation_density)))
    stats = WorkloadStatistics(
        sigma_x=sigma_x,
        sigma_w=1.0,
        x_max=1.0,
        w_max=1.0,
        mean_x_squared=activation_density,
        bits_x=1,
        bits_w=1,
    )

    def sampler(length: int, rng: np.random.Generator):
        activations = (rng.random(length) < activation_density).astype(float)
        weights = rng.choice((-1.0, 1.0), size=length)
        return activations, weights

    return WorkloadGenerator("binary", stats, sampler)


def gaussian_workload(
    bits_x: int = 4,
    bits_w: int = 4,
    crest_factor: float = 3.0,
) -> WorkloadGenerator:
    """Quantised zero-mean Gaussian activations and weights.

    Values are clipped at ``crest_factor`` standard deviations and quantised
    to the requested precisions (mid-rise), matching the statistics of
    :meth:`WorkloadStatistics.gaussian`.
    """
    stats = WorkloadStatistics.gaussian(bits_x, bits_w, crest_factor)

    def quantise(values: np.ndarray, maximum: float, bits: int) -> np.ndarray:
        clipped = np.clip(values, -maximum, maximum)
        levels = 2 ** bits
        step = 2.0 * maximum / levels
        return np.round(clipped / step) * step

    def sampler(length: int, rng: np.random.Generator):
        activations = rng.normal(0.0, stats.sigma_x, length)
        weights = rng.normal(0.0, stats.sigma_w, length)
        return (
            quantise(activations, stats.x_max, bits_x),
            quantise(weights, stats.w_max, bits_w),
        )

    return WorkloadGenerator("gaussian", stats, sampler)


def sparse_workload(density: float = 0.25) -> WorkloadGenerator:
    """Binary workload with sparse activations (SNN / ReLU-heavy CNN style)."""
    return binary_workload(activation_density=density)


def measure_statistics(
    generator: WorkloadGenerator,
    length: int = 256,
    samples: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Empirically estimate the workload statistics of a generator.

    Returns a dictionary with the measured sigma_x, sigma_w, E[x^2] and the
    analytic values the generator claims, so callers (and tests) can compare
    them directly.
    """
    generator_rng = rng or np.random.default_rng(1234)
    activations = []
    weights = []
    for x_vec, w_vec in generator.batches(length, samples, generator_rng):
        activations.append(x_vec)
        weights.append(w_vec)
    x_all = np.concatenate(activations)
    w_all = np.concatenate(weights)
    return {
        "measured_sigma_x": float(np.std(x_all)),
        "measured_sigma_w": float(np.std(w_all)),
        "measured_mean_x_squared": float(np.mean(x_all ** 2)),
        "claimed_sigma_x": generator.statistics.sigma_x,
        "claimed_sigma_w": generator.statistics.sigma_w,
        "claimed_mean_x_squared": generator.statistics.mean_x_squared,
    }
