"""Behavioral simulation of the synthesizable ACIM.

The paper calibrates its estimation model with post-layout simulation on
the TSMC28 PDK.  This package is the reproduction's substitute: a
physics-level behavioral model of the charge-redistribution (QR) compute
path and the SAR ADC, with the noise sources the SNR model cares about
(capacitor mismatch, kT/C thermal noise, quantization), plus Monte-Carlo
SNR measurement and workload generators.

Main entry points:

* :class:`~repro.sim.behavioral.QrColumnSimulator` — one column's MAC +
  charge redistribution + SAR conversion.
* :class:`~repro.sim.montecarlo.MonteCarloSnr` — measured SNR of a design
  point over random workloads, used to validate Equations 2–6.
* :func:`~repro.sim.sar_adc.sar_adc_energy` — behavioral ADC energy used to
  fit the Equation-9 constants.
"""

from repro.sim.sar_adc import (
    SarAdc,
    cdac_switching_energy,
    code_to_value,
    sar_adc_energy,
)
from repro.sim.behavioral import NoiseSettings, QrColumnSimulator
from repro.sim.montecarlo import MonteCarloSnr, SnrMeasurement
from repro.sim.yield_analysis import (
    MismatchYieldAnalyzer,
    YieldResult,
    yield_across_unit_capacitance,
)
from repro.sim.workloads import (
    WorkloadGenerator,
    binary_workload,
    gaussian_workload,
    measure_statistics,
)

__all__ = [
    "SarAdc",
    "cdac_switching_energy",
    "code_to_value",
    "sar_adc_energy",
    "NoiseSettings",
    "QrColumnSimulator",
    "MonteCarloSnr",
    "SnrMeasurement",
    "MismatchYieldAnalyzer",
    "YieldResult",
    "yield_across_unit_capacitance",
    "WorkloadGenerator",
    "binary_workload",
    "gaussian_workload",
    "measure_statistics",
]
