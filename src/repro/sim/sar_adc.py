"""Behavioral SAR ADC: successive-approximation conversion and energy.

The synthesizable architecture reuses the compute capacitors as the SAR
CDAC (groups with 1:1:2:...:2^(B-1) ratios, paper Figure 6), so the ADC
behavior needed here is the plain binary-search conversion plus an energy
model.  The energy model stands in for the paper's post-layout simulation
when fitting the Equation-9 constants k1/k2:

* CDAC switching energy grows with the total CDAC capacitance (2^B units),
* the comparator must resolve ever smaller LSBs, so its energy follows the
  classic noise-limited 4^B scaling,
* SAR logic energy grows linearly with the number of bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class SarAdc:
    """A behavioral SAR ADC.

    The converter digitises an input voltage within ``[v_low, v_high]`` into
    ``bits`` bits by successive approximation.  Comparator input-referred
    noise can be modelled with ``comparator_noise_sigma`` (volts RMS).

    Attributes:
        bits: resolution B_ADC.
        v_low: lower reference voltage.
        v_high: upper reference voltage.
        comparator_noise_sigma: RMS input-referred comparator noise in volts.
        comparator_offset: static comparator offset in volts.
    """

    bits: int
    v_low: float = 0.0
    v_high: float = 0.9
    comparator_noise_sigma: float = 0.0
    comparator_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise SimulationError("ADC resolution must be at least 1 bit")
        if self.v_high <= self.v_low:
            raise SimulationError("v_high must exceed v_low")
        if self.comparator_noise_sigma < 0:
            raise SimulationError("comparator noise must be non-negative")

    @property
    def full_scale(self) -> float:
        """Full-scale input range in volts."""
        return self.v_high - self.v_low

    @property
    def lsb(self) -> float:
        """One LSB in volts."""
        return self.full_scale / (2 ** self.bits)

    def convert(self, v_in: float, rng: Optional[np.random.Generator] = None) -> int:
        """Convert an input voltage to a digital code by binary search.

        Inputs outside the reference range saturate to the end codes, like a
        real converter.

        Args:
            v_in: input voltage in volts.
            rng: random generator for comparator noise; required only when
                ``comparator_noise_sigma`` is non-zero.
        """
        code = 0
        for bit in range(self.bits - 1, -1, -1):
            trial = code | (1 << bit)
            threshold = self.v_low + (trial) * self.lsb - self.lsb / 2.0
            noise = 0.0
            if self.comparator_noise_sigma > 0.0:
                generator = rng if rng is not None else np.random.default_rng()
                noise = float(generator.normal(0.0, self.comparator_noise_sigma))
            if v_in + noise + self.comparator_offset >= threshold:
                code = trial
        return code

    def convert_many(
        self, voltages: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Vectorised conversion of an array of input voltages."""
        voltages = np.asarray(voltages, dtype=float)
        codes = np.zeros(voltages.shape, dtype=int)
        generator = rng if rng is not None else np.random.default_rng()
        for bit in range(self.bits - 1, -1, -1):
            trial = codes | (1 << bit)
            thresholds = self.v_low + trial * self.lsb - self.lsb / 2.0
            if self.comparator_noise_sigma > 0.0:
                noise = generator.normal(0.0, self.comparator_noise_sigma, voltages.shape)
            else:
                noise = 0.0
            decisions = voltages + noise + self.comparator_offset >= thresholds
            codes = np.where(decisions, trial, codes)
        return codes

    def code_to_voltage(self, code: int) -> float:
        """Mid-tread reconstruction voltage of a code."""
        if not 0 <= code < 2 ** self.bits:
            raise SimulationError(f"code {code} out of range for {self.bits} bits")
        return self.v_low + code * self.lsb

    def codes_to_voltages(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`code_to_voltage` over an array of codes."""
        codes = np.asarray(codes)
        if codes.size and (np.any(codes < 0) or np.any(codes >= 2 ** self.bits)):
            raise SimulationError(f"code out of range for {self.bits} bits")
        return self.v_low + codes * self.lsb


def code_to_value(code, bits: int, low: float = -1.0, high: float = 1.0):
    """Map an ADC code (scalar or array) back to the normalised value range."""
    if bits < 1:
        raise SimulationError("bits must be at least 1")
    span = high - low
    return low + (np.asarray(code, dtype=float) + 0.5) * span / (2 ** bits)


# ---------------------------------------------------------------------------
# Energy model (substitute for post-layout simulation)
# ---------------------------------------------------------------------------


def cdac_switching_energy(
    bits: int,
    unit_capacitance: float = 1.0e-15,
    vdd: float = 0.9,
    switching_factor: float = 0.66,
) -> float:
    """Average CDAC switching energy of one conversion, in joules.

    The total CDAC capacitance is ``2^bits`` unit capacitors; the average
    switching energy of a conventional/monotonic SAR switching scheme is a
    fixed fraction of ``C_total * VDD^2``.
    """
    if bits < 1:
        raise SimulationError("bits must be at least 1")
    if unit_capacitance <= 0 or vdd <= 0:
        raise SimulationError("capacitance and supply must be positive")
    total_cap = (2 ** bits) * unit_capacitance
    return switching_factor * total_cap * vdd ** 2


def sar_adc_energy(
    bits: int,
    unit_capacitance: float = 1.0e-15,
    vdd: float = 0.9,
    logic_energy_per_bit: float = 1.8e-15,
    comparator_energy_coefficient: float = 0.12e-15,
) -> float:
    """Behavioral per-conversion energy of the SAR ADC, in joules.

    Three contributions are summed:

    * SAR logic and clocking: linear in the number of bits,
    * CDAC switching: proportional to the 2^B total capacitance,
    * comparator: noise-limited, so it scales as 4^B (each extra bit halves
      the LSB and quadruples the required comparator energy), normalised to
      the supply squared as in the paper's Equation 9.

    The function is the data source for
    :func:`repro.model.calibration.fit_adc_energy_constants`.
    """
    if bits < 1:
        raise SimulationError("bits must be at least 1")
    logic = logic_energy_per_bit * bits
    cdac = cdac_switching_energy(bits, unit_capacitance, vdd)
    comparator = comparator_energy_coefficient * (4.0 ** bits) * vdd ** 2
    return logic + cdac + comparator


def adc_energy_samples(
    bit_range: Tuple[int, int] = (2, 8),
    unit_capacitance: float = 1.0e-15,
    vdd: float = 0.9,
) -> dict:
    """Per-resolution energy samples used by the k1/k2 calibration fit."""
    low, high = bit_range
    if low < 1 or high < low:
        raise SimulationError("invalid bit range")
    return {
        bits: sar_adc_energy(bits, unit_capacitance=unit_capacitance, vdd=vdd)
        for bits in range(low, high + 1)
    }
