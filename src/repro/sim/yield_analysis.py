"""Mismatch / yield analysis of a design point.

The SNR model treats capacitor mismatch as an average noise contribution;
real macros, however, are judged instance by instance: each fabricated
column draws its own mismatch sample, and a column whose measured SNR falls
below the application's requirement is a defective readout channel.  This
module runs a population of independently mismatched behavioral columns,
estimates the SNR distribution across instances, and reports the parametric
yield against an SNR specification — the robustness view behind the paper's
choice of a charge-domain (PVT-insensitive) compute model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.arch.spec import ACIMDesignSpec
from repro.sim.behavioral import NoiseSettings, QrColumnSimulator
from repro.sim.workloads import WorkloadGenerator, binary_workload
from repro.units import linear_to_db


@dataclass(frozen=True)
class YieldResult:
    """Result of a mismatch yield analysis.

    Attributes:
        spec: the analysed design point.
        snr_spec_db: the SNR requirement instances are judged against.
        instances: number of simulated column instances.
        snr_mean_db / snr_std_db: distribution of per-instance SNR in dB.
        snr_min_db / snr_max_db: extremes over the population.
        yield_fraction: fraction of instances meeting the requirement.
        per_instance_snr_db: the raw per-instance SNR values.
    """

    spec: ACIMDesignSpec
    snr_spec_db: float
    instances: int
    snr_mean_db: float
    snr_std_db: float
    snr_min_db: float
    snr_max_db: float
    yield_fraction: float
    per_instance_snr_db: List[float]

    def meets_target(self, target_yield: float = 0.99) -> bool:
        """True when the parametric yield reaches ``target_yield``."""
        return self.yield_fraction >= target_yield


class MismatchYieldAnalyzer:
    """Estimates the SNR distribution and yield across mismatched instances."""

    def __init__(
        self,
        spec: ACIMDesignSpec,
        workload: Optional[WorkloadGenerator] = None,
        noise: NoiseSettings = NoiseSettings(),
        unit_capacitance: float = 1.0e-15,
        vdd: float = 0.9,
        seed: int = 99,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.workload = workload or binary_workload()
        self.noise = noise
        self.unit_capacitance = unit_capacitance
        self.vdd = vdd
        self.seed = seed

    def run(
        self,
        snr_spec_db: float,
        instances: int = 32,
        trials_per_instance: int = 200,
    ) -> YieldResult:
        """Simulate ``instances`` mismatched columns and compute the yield.

        Args:
            snr_spec_db: minimum acceptable per-column SNR.
            instances: number of independent mismatch samples (fabricated
                column instances).
            trials_per_instance: random dot products per instance.
        """
        if instances < 2:
            raise SimulationError("need at least two instances for a distribution")
        if trials_per_instance < 20:
            raise SimulationError("need at least 20 trials per instance")
        rng = np.random.default_rng(self.seed)
        length = self.spec.local_arrays_per_column
        per_instance: List[float] = []
        for index in range(instances):
            simulator = QrColumnSimulator(
                self.spec,
                noise=self.noise,
                unit_capacitance=self.unit_capacitance,
                vdd=self.vdd,
                rng=np.random.default_rng(self.seed + 1000 + index),
            )
            ideal = np.empty(trials_per_instance)
            measured = np.empty(trials_per_instance)
            for trial, (x_vec, w_vec) in enumerate(
                self.workload.batches(length, trials_per_instance, rng)
            ):
                ideal[trial] = simulator.ideal_dot_product(x_vec, w_vec)
                measured[trial] = simulator.dot_product(x_vec, w_vec)
            errors = measured - ideal
            signal_variance = float(np.var(ideal))
            error_power = float(np.var(errors) + np.mean(errors) ** 2)
            if error_power <= 0:
                per_instance.append(200.0)
            else:
                per_instance.append(linear_to_db(signal_variance / error_power))
        values = np.asarray(per_instance)
        passing = float(np.mean(values >= snr_spec_db))
        return YieldResult(
            spec=self.spec,
            snr_spec_db=snr_spec_db,
            instances=instances,
            snr_mean_db=float(np.mean(values)),
            snr_std_db=float(np.std(values)),
            snr_min_db=float(np.min(values)),
            snr_max_db=float(np.max(values)),
            yield_fraction=passing,
            per_instance_snr_db=list(values),
        )


def yield_across_unit_capacitance(
    spec: ACIMDesignSpec,
    snr_spec_db: float,
    capacitances: List[float],
    instances: int = 16,
    trials_per_instance: int = 120,
    seed: int = 123,
) -> List[YieldResult]:
    """Sweep the unit compute capacitance and report yield at each point.

    Larger unit capacitors reduce both relative mismatch (kappa/sqrt(C)) and
    kT/C noise, so yield against a fixed SNR specification improves — the
    sizing trade-off a designer would close with this sweep.
    """
    results = []
    for capacitance in capacitances:
        if capacitance <= 0:
            raise SimulationError("unit capacitance must be positive")
        analyzer = MismatchYieldAnalyzer(
            spec, unit_capacitance=capacitance, seed=seed,
        )
        results.append(analyzer.run(
            snr_spec_db, instances=instances, trials_per_instance=trials_per_instance,
        ))
    return results
