"""Monte-Carlo SNR measurement of a design point.

Runs many random dot products through the behavioral column simulator and
compares the digital results against the ideal (infinite-precision,
noiseless) values.  The resulting measured SNR validates the analytic SNR
model of Equations 2–6: the two should agree on trends (SNR rises ~6 dB per
ADC bit, falls ~3 dB per doubling of the accumulation length) and roughly
on magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.arch.spec import ACIMDesignSpec
from repro.sim.behavioral import NoiseSettings, QrColumnSimulator
from repro.sim.workloads import WorkloadGenerator, binary_workload
from repro.units import linear_to_db


@dataclass(frozen=True)
class SnrMeasurement:
    """Result of a Monte-Carlo SNR run.

    Attributes:
        spec: the evaluated design point.
        trials: number of dot products simulated.
        snr_db: measured SNR in dB (signal variance over error variance).
        signal_variance: variance of the ideal dot-product results.
        error_variance: variance of (measured - ideal).
        mean_absolute_error: mean |measured - ideal| in product units.
    """

    spec: ACIMDesignSpec
    trials: int
    snr_db: float
    signal_variance: float
    error_variance: float
    mean_absolute_error: float


class MonteCarloSnr:
    """Monte-Carlo SNR measurement harness."""

    def __init__(
        self,
        spec: ACIMDesignSpec,
        workload: Optional[WorkloadGenerator] = None,
        noise: NoiseSettings = NoiseSettings(),
        unit_capacitance: float = 1.0e-15,
        vdd: float = 0.9,
        seed: int = 2024,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.workload = workload or binary_workload()
        self.noise = noise
        self.unit_capacitance = unit_capacitance
        self.vdd = vdd
        self.seed = seed

    def run(self, trials: int = 2000, columns: int = 8) -> SnrMeasurement:
        """Measure the SNR over ``trials`` random dot products.

        Each column instance's whole trial block runs as one array pass:
        the workload is sampled as a ``(trials, N)`` matrix, the mismatch
        and noise perturbations are drawn as arrays, and the SAR conversion
        digitises every trial at once — no per-trial Python loop.

        Args:
            trials: number of dot products to simulate in total.
            columns: number of independent column instances (each with its
                own mismatch sample) the trials are spread across, so the
                measurement averages over mismatch as well as noise.
        """
        if trials < 10:
            raise SimulationError("need at least 10 trials for a meaningful SNR")
        if columns < 1:
            raise SimulationError("need at least one column instance")
        rng = np.random.default_rng(self.seed)
        length = self.spec.local_arrays_per_column
        ideal_blocks = []
        measured_blocks = []
        trials_per_column = max(1, trials // columns)
        for column_index in range(columns):
            simulator = QrColumnSimulator(
                self.spec,
                noise=self.noise,
                unit_capacitance=self.unit_capacitance,
                vdd=self.vdd,
                rng=np.random.default_rng(self.seed + 17 * column_index + 1),
            )
            x_mat, w_mat = self.workload.sample_matrix(
                length, trials_per_column, rng
            )
            ideal_block, measured_block = simulator.dot_products(x_mat, w_mat)
            ideal_blocks.append(ideal_block)
            measured_blocks.append(measured_block)
        ideal = np.concatenate(ideal_blocks)
        measured = np.concatenate(measured_blocks)
        errors = measured - ideal
        signal_variance = float(np.var(ideal))
        error_variance = float(np.var(errors) + np.mean(errors) ** 2)
        if error_variance <= 0:
            # A perfect (noise-free, quantisation-free) measurement; report a
            # very large but finite SNR so downstream comparisons stay finite.
            snr_db = 200.0
        else:
            snr_db = linear_to_db(signal_variance / error_variance)
        return SnrMeasurement(
            spec=self.spec,
            trials=len(ideal),
            snr_db=snr_db,
            signal_variance=signal_variance,
            error_variance=error_variance,
            mean_absolute_error=float(np.mean(np.abs(errors))),
        )


def _measure_one(task) -> SnrMeasurement:
    """Fan-out work unit for :func:`measure_many` (picklable)."""
    spec_tuple, trials, columns, seed = task
    harness = MonteCarloSnr(ACIMDesignSpec(*spec_tuple), seed=seed)
    return harness.run(trials=trials, columns=columns)


def measure_many(
    specs: Sequence[ACIMDesignSpec],
    trials: int = 2000,
    columns: int = 8,
    seed: int = 2024,
    engine=None,
) -> List[SnrMeasurement]:
    """Monte-Carlo SNR of many design points through an evaluation engine.

    Each spec is an independent simulation with a seed derived from its
    position, so results are deterministic regardless of backend.  Within a
    task the trial block is fully vectorized (perturbation matrices, batch
    SAR conversion — see :meth:`MonteCarloSnr.run`); across specs this is
    the repository's canonical *high-fidelity* batch evaluation, the regime
    where the engine's ``process`` backend pays off (see ``docs/engine.md``).
    """
    from repro.engine import default_engine

    engine = engine or default_engine()
    tasks = [
        (spec.as_tuple(), trials, columns, seed + index)
        for index, spec in enumerate(specs)
    ]
    return engine.map(_measure_one, tasks)
