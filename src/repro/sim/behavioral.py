"""Behavioral model of one ACIM column: QR MAC, redistribution, SAR readout.

The simulator follows the operating states of the paper's Figure 5/6:

1. **MAC state** — every local array multiplies its selected stored weight
   bit by the broadcast activation bit; the shared compute capacitor's top
   plate settles to a voltage encoding the product.
2. **Charge redistribution** — the bottom plates of all H/L compute
   capacitors share charge on the read bitline; with (mismatched)
   capacitances C_i the settled voltage is the capacitance-weighted mean of
   the per-capacitor voltages, plus kT/C sampling noise.
3. **SAR conversion** — the shared-capacitor CDAC digitises the bitline
   voltage into B_ADC bits.

The model is deliberately voltage-level (not transistor-level): it captures
exactly the non-idealities the estimation model reasons about — capacitor
mismatch, thermal noise, comparator noise and quantization — which is what
is needed to validate Equations 2–6 by Monte Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.arch.spec import ACIMDesignSpec
from repro.sim.sar_adc import SarAdc
from repro.units import BOLTZMANN_K, ROOM_TEMPERATURE_K


@dataclass(frozen=True)
class NoiseSettings:
    """Which non-idealities the behavioral simulation includes.

    Attributes:
        cap_mismatch_kappa: capacitor mismatch coefficient (sigma_C =
            kappa * sqrt(C)); zero disables mismatch.
        include_thermal_noise: add kT/C sampling noise on the redistributed
            bitline voltage.
        comparator_noise_sigma: RMS comparator input noise in volts.
        temperature_k: temperature for the thermal noise term.
        charge_injection_sigma: residual charge-injection noise in volts RMS
            (practically zero with bottom-plate redistribution).
    """

    cap_mismatch_kappa: float = 4.0e-10
    include_thermal_noise: bool = True
    comparator_noise_sigma: float = 0.0
    temperature_k: float = ROOM_TEMPERATURE_K
    charge_injection_sigma: float = 0.0

    @classmethod
    def ideal(cls) -> "NoiseSettings":
        """No analog non-idealities at all (quantization only)."""
        return cls(
            cap_mismatch_kappa=0.0,
            include_thermal_noise=False,
            comparator_noise_sigma=0.0,
            charge_injection_sigma=0.0,
        )


class QrColumnSimulator:
    """Behavioral simulation of one column of the synthesizable ACIM.

    The column accumulates ``N = H / L`` product terms per cycle (one per
    local array).  Products are represented in normalised form in [-1, 1]
    (for the paper's 1b x 1b mode they take values in {-1, 0, +1}).
    """

    def __init__(
        self,
        spec: ACIMDesignSpec,
        noise: NoiseSettings = NoiseSettings(),
        unit_capacitance: float = 1.0e-15,
        vdd: float = 0.9,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        spec.validate()
        if unit_capacitance <= 0 or vdd <= 0:
            raise SimulationError("capacitance and supply must be positive")
        self.spec = spec
        self.noise = noise
        self.unit_capacitance = unit_capacitance
        self.vdd = vdd
        self.vcm = vdd / 2.0
        self.rng = rng or np.random.default_rng(0)
        self._capacitors = self._sample_capacitors()
        self.adc = SarAdc(
            bits=spec.adc_bits,
            v_low=0.0,
            v_high=vdd,
            comparator_noise_sigma=noise.comparator_noise_sigma,
        )

    # -- construction helpers ---------------------------------------------

    def _sample_capacitors(self) -> np.ndarray:
        """Draw the per-local-array compute capacitor values (with mismatch)."""
        n = self.spec.local_arrays_per_column
        nominal = self.unit_capacitance
        if self.noise.cap_mismatch_kappa <= 0:
            return np.full(n, nominal)
        sigma = self.noise.cap_mismatch_kappa * np.sqrt(nominal)
        values = self.rng.normal(nominal, sigma, size=n)
        # A capacitor can never be non-positive; mismatch is a tiny
        # perturbation so clipping is purely defensive.
        return np.clip(values, nominal * 0.5, nominal * 1.5)

    @property
    def capacitors(self) -> np.ndarray:
        """The (mismatched) compute capacitor values of this column instance."""
        return self._capacitors.copy()

    # -- operating states ---------------------------------------------------

    def mac_phase(self, products: np.ndarray) -> np.ndarray:
        """MAC state: map normalised products to capacitor top-plate voltages.

        Args:
            products: array of length H/L with values in [-1, 1].

        Returns:
            Top-plate voltages after the MAC state settles.
        """
        products = np.asarray(products, dtype=float)
        expected = self.spec.local_arrays_per_column
        if products.shape != (expected,):
            raise SimulationError(
                f"expected {expected} products, got shape {products.shape}"
            )
        if np.any(np.abs(products) > 1.0 + 1e-9):
            raise SimulationError("products must be normalised to [-1, 1]")
        swing = self.vdd / 2.0
        return self.vcm + products * swing

    def charge_redistribution(self, top_plate_voltages: np.ndarray) -> float:
        """Charge redistribution: capacitance-weighted mean + sampling noise."""
        voltages = np.asarray(top_plate_voltages, dtype=float)
        caps = self._capacitors
        if voltages.shape != caps.shape:
            raise SimulationError("voltage vector does not match capacitor count")
        total_cap = float(np.sum(caps))
        v_x = float(np.dot(caps, voltages) / total_cap)
        if self.noise.include_thermal_noise:
            sigma = np.sqrt(BOLTZMANN_K * self.noise.temperature_k / total_cap)
            v_x += float(self.rng.normal(0.0, sigma))
        if self.noise.charge_injection_sigma > 0:
            v_x += float(self.rng.normal(0.0, self.noise.charge_injection_sigma))
        return v_x

    def convert(self, bitline_voltage: float) -> int:
        """ADC conversion state: digitise the redistributed voltage."""
        return self.adc.convert(bitline_voltage, rng=self.rng)

    # -- end-to-end -------------------------------------------------------------

    def compute_cycle(self, products: np.ndarray) -> Tuple[int, float]:
        """Run one full MAC + conversion cycle.

        Returns:
            ``(code, estimated_sum)`` where ``estimated_sum`` is the digital
            reconstruction of ``sum(products)`` in product units.
        """
        top_plates = self.mac_phase(products)
        v_x = self.charge_redistribution(top_plates)
        code = self.convert(v_x)
        n = self.spec.local_arrays_per_column
        # Invert the voltage mapping: v_x = VCM + (sum/N) * VDD/2.  The SAR
        # decision thresholds sit half an LSB below each code, so the code's
        # own voltage is already the centre of its quantization bin.
        reconstructed_voltage = self.adc.code_to_voltage(code)
        normalised = (reconstructed_voltage - self.vcm) / (self.vdd / 2.0)
        return code, normalised * n

    # -- vectorized trial batches -------------------------------------------

    def mac_phase_many(self, products: np.ndarray) -> np.ndarray:
        """MAC state over a ``(trials, H/L)`` product matrix."""
        products = np.asarray(products, dtype=float)
        expected = self.spec.local_arrays_per_column
        if products.ndim != 2 or products.shape[1] != expected:
            raise SimulationError(
                f"expected a (trials, {expected}) product matrix, "
                f"got shape {products.shape}"
            )
        if np.any(np.abs(products) > 1.0 + 1e-9):
            raise SimulationError("products must be normalised to [-1, 1]")
        swing = self.vdd / 2.0
        return self.vcm + products * swing

    def charge_redistribution_many(
        self, top_plate_voltages: np.ndarray
    ) -> np.ndarray:
        """Charge redistribution of a ``(trials, H/L)`` voltage matrix.

        The per-trial noise terms are drawn as whole arrays — one thermal
        sample and (when enabled) one charge-injection sample per trial —
        instead of scalar draws inside a Python loop.
        """
        voltages = np.asarray(top_plate_voltages, dtype=float)
        caps = self._capacitors
        if voltages.ndim != 2 or voltages.shape[1] != caps.shape[0]:
            raise SimulationError("voltage matrix does not match capacitor count")
        total_cap = float(np.sum(caps))
        v_x = voltages @ caps / total_cap
        trials = voltages.shape[0]
        if self.noise.include_thermal_noise:
            sigma = np.sqrt(BOLTZMANN_K * self.noise.temperature_k / total_cap)
            v_x = v_x + self.rng.normal(0.0, sigma, size=trials)
        if self.noise.charge_injection_sigma > 0:
            v_x = v_x + self.rng.normal(
                0.0, self.noise.charge_injection_sigma, size=trials
            )
        return v_x

    def compute_cycles(self, products: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Run many full MAC + conversion cycles at once.

        Args:
            products: ``(trials, H/L)`` matrix of normalised products.

        Returns:
            ``(codes, estimated_sums)`` arrays of length ``trials``, the
            digital codes and their reconstructions in product units.
        """
        top_plates = self.mac_phase_many(products)
        v_x = self.charge_redistribution_many(top_plates)
        codes = self.adc.convert_many(v_x, rng=self.rng)
        n = self.spec.local_arrays_per_column
        reconstructed = self.adc.codes_to_voltages(codes)
        normalised = (reconstructed - self.vcm) / (self.vdd / 2.0)
        return codes, normalised * n

    def dot_products(
        self, activations: np.ndarray, weights: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compute many dot products through the column in one array pass.

        Args:
            activations: ``(trials, H/L)`` matrix with values in [0, 1].
            weights: ``(trials, H/L)`` matrix with values in [-1, 1].

        Returns:
            ``(ideal, measured)`` arrays of length ``trials`` — the
            noiseless references and the digital reconstructions.
        """
        activations = np.asarray(activations, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if activations.shape != weights.shape:
            raise SimulationError("activation/weight shapes differ")
        products = activations * weights
        ideal = products.sum(axis=1)
        _codes, measured = self.compute_cycles(products)
        return ideal, measured

    def dot_product(self, activations: np.ndarray, weights: np.ndarray) -> float:
        """Compute a dot product of two +/-1/0 vectors through the column.

        Args:
            activations: length-N vector with values in [0, 1].
            weights: length-N vector with values in [-1, 1].
        """
        activations = np.asarray(activations, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if activations.shape != weights.shape:
            raise SimulationError("activation/weight shapes differ")
        products = activations * weights
        _code, estimate = self.compute_cycle(products)
        return estimate

    def ideal_dot_product(self, activations: np.ndarray, weights: np.ndarray) -> float:
        """The noiseless, un-quantised reference result."""
        return float(np.dot(np.asarray(activations, float), np.asarray(weights, float)))
