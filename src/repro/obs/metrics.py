"""Counters, gauges and fixed-bucket histograms behind one registry.

:class:`MetricsRegistry` is the quantitative half of the observability
layer (:mod:`repro.obs.trace` is the temporal half): a flat, thread-safe
namespace of named instruments that every subsystem — the evaluation
engine, the physical pipeline, the result store, the campaign loop —
records into.  Consumers read it two ways:

* **snapshots** — :meth:`MetricsRegistry.snapshot` returns a plain,
  JSON-serializable dictionary of every instrument's current value, and
  :meth:`MetricsRegistry.since` diffs two snapshots into a per-call
  delta (the shape :meth:`repro.api.Session.submit` attaches to every
  :class:`~repro.api.results.ApiResult`);
* **typed views** — ``EngineStats`` is materialized *from* the registry
  (see :mod:`repro.engine.engine`), so the legacy statistics API keeps
  its exact shape while the numbers live here.

Instruments are created on first use (``registry.counter(name)``) and
instrument handles are cheap to hold, so hot paths resolve them once and
record batch-aggregated values — one lock acquisition per batch, not per
item.  Counter values are plain Python ints/floats accumulated in the
same order the legacy ``+=`` counters used, which is what keeps the
registry-backed ``EngineStats`` bit-identical to the pre-refactor one.

Metric names are dotted lowercase paths (``engine.cache.hit``,
``store.flush.seconds``); the catalogue lives in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds for second-valued observations.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0
)

#: Default histogram bucket upper bounds for batch-size observations.
SIZE_BUCKETS: Tuple[float, ...] = (1, 8, 32, 128, 512, 2048, 8192)


class Counter:
    """A monotonically accumulating value (int or float increments)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = lock

    def add(self, amount: Number) -> None:
        """Accumulate ``amount`` (negative amounts are a caller bug)."""
        with self._lock:
            self._value += amount

    def inc(self) -> None:
        """Accumulate 1."""
        self.add(1)

    @property
    def value(self) -> Number:
        """The accumulated total."""
        return self._value

    def snapshot_value(self) -> Number:
        return self._value

    @staticmethod
    def delta(current: Number, baseline: Optional[Number]) -> Number:
        return current - (baseline or 0)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = lock

    def set(self, value: Number) -> None:
        """Record the current level."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> Number:
        return self._value

    def snapshot_value(self) -> Number:
        return self._value

    @staticmethod
    def delta(current: Number, baseline: Optional[Number]) -> Number:
        # A gauge is a level, not a flow: the delta view reports the
        # current level rather than a meaningless difference.
        return current


class Histogram:
    """Fixed-bucket distribution of observed values.

    Buckets are cumulative-style upper bounds (``le``); one overflow
    bucket catches everything beyond the last bound.  The snapshot shape
    is JSON-friendly: ``{"count", "sum", "buckets": [[le, n], ...]}``
    with ``le`` of the overflow bucket serialized as ``"inf"``.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        bounds: Sequence[Number],
        lock: threading.RLock,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} needs ascending bucket bounds, "
                f"got {bounds!r}"
            )
        self.name = name
        self.bounds: Tuple[Number, ...] = tuple(bounds)
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self._sum: float = 0.0
        self._count: int = 0
        self._lock = lock

    def observe(self, value: Number) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot_value(self) -> Dict[str, object]:
        labels = [*self.bounds, "inf"]
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": [
                [label, count]
                for label, count in zip(labels, list(self._counts))
            ],
        }

    @staticmethod
    def delta(current: Dict, baseline: Optional[Dict]) -> Dict:
        if not baseline:
            return current
        base_counts = {
            label: count for label, count in baseline.get("buckets", [])
        }
        return {
            "count": current["count"] - baseline.get("count", 0),
            "sum": current["sum"] - baseline.get("sum", 0.0),
            "buckets": [
                [label, count - base_counts.get(label, 0)]
                for label, count in current["buckets"]
            ],
        }


class MetricsRegistry:
    """A named, thread-safe collection of counters, gauges and histograms.

    Instruments are created on first use and live for the registry's
    lifetime; asking for an existing name returns the existing instrument
    (a kind mismatch raises).  ``snapshot()``/``since()`` mirror the
    ``EngineStats.snapshot()/since()`` discipline the repo already uses:
    long-lived registries accumulate forever, consumers diff snapshots.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: Dict[str, object] = {}

    def _instrument(self, name: str, kind, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, *args, self._lock)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """The (auto-created) counter called ``name``."""
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The (auto-created) gauge called ``name``."""
        return self._instrument(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[Number] = SECONDS_BUCKETS
    ) -> Histogram:
        """The (auto-created) histogram called ``name``.

        ``bounds`` only applies on creation; later calls return the
        existing instrument unchanged.
        """
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, bounds, self._lock)
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise ValueError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a Histogram"
                )
            return instrument

    def value(self, name: str, default: Number = 0) -> object:
        """One instrument's current value (``default`` when absent)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        return instrument.snapshot_value()

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, object]:
        """Every instrument's current value as plain JSON-able data."""
        with self._lock:
            return {
                name: instrument.snapshot_value()
                for name, instrument in sorted(self._instruments.items())
            }

    def since(self, baseline: Dict[str, object]) -> Dict[str, object]:
        """Per-instrument deltas relative to an earlier :meth:`snapshot`.

        Counters and histograms diff; gauges report their current level.
        Instruments created after the baseline appear with their full
        value (their baseline is implicitly zero).
        """
        deltas: Dict[str, object] = {}
        with self._lock:
            items = list(sorted(self._instruments.items()))
        for name, instrument in items:
            deltas[name] = type(instrument).delta(
                instrument.snapshot_value(), baseline.get(name)
            )
        return deltas


def counters_only(snapshot: Dict[str, object]) -> Dict[str, Number]:
    """The scalar subset of a snapshot/delta (drops histogram documents)."""
    return {
        name: value
        for name, value in snapshot.items()
        if isinstance(value, (int, float))
    }
