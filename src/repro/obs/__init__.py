"""Observability layer: tracing spans + a metrics registry (stdlib-only).

See ``docs/observability.md`` for the API guide, exporter formats and
the metric name catalogue.
"""

from .exporters import export_chrome, export_jsonl, span_to_trace_event
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    counters_only,
)
from .trace import (
    DEFAULT_MAX_SPANS,
    NULL_SPAN,
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
    worker_span_record,
)

__all__ = [
    "Counter",
    "DEFAULT_MAX_SPANS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
    "configure_tracing",
    "counters_only",
    "export_chrome",
    "export_jsonl",
    "get_tracer",
    "span_to_trace_event",
    "worker_span_record",
]
