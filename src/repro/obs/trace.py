"""Nested-span tracing across threads and worker processes.

:class:`Tracer` produces :class:`Span` records — named intervals on the
monotonic clock with parent/child links and free-form attributes — via
the ``with tracer.span(name, **attrs):`` context manager.  The design
targets the engine's execution model:

* **Near-zero cost when disabled.**  The process-wide tracer starts
  disabled; ``span()`` then returns a shared no-op handle without
  allocating, so instrumentation stays in the hot paths permanently (the
  overhead regression test bounds the per-call cost).
* **Thread-safe nesting.**  The current-span stack is thread-local, so
  thread-backend chunks each build their own ancestry while recording
  into one shared, lock-protected buffer.
* **Cross-process collection.**  Workers in
  :mod:`repro.engine.workers` time their chunks with the same
  ``time.perf_counter_ns()`` clock (CLOCK_MONOTONIC is system-wide on
  Linux, and workers are forked from the parent), record plain span
  dictionaries, and ship them back on the result queue; the parent
  re-parents them under its dispatch span with :meth:`Tracer.adopt`, so
  one trace covers parent dispatch *and* per-chunk worker compute.
* **Bounded memory.**  The buffer holds at most ``max_spans`` records;
  overflow increments :attr:`Tracer.dropped` instead of growing without
  bound.

Export with :mod:`repro.obs.exporters` (JSONL or Chrome ``trace_event``
for Perfetto).  See ``docs/observability.md``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

#: Default span-buffer capacity (per tracer).
DEFAULT_MAX_SPANS = 100_000

_span_counter = itertools.count(1)


def _new_span_id() -> str:
    """A span id unique across the processes contributing to one trace."""
    return f"{os.getpid():x}-{next(_span_counter):x}"


class Span:
    """One named, timed interval with ancestry and attributes.

    Attributes:
        name: span name (dotted lowercase, e.g. ``engine.chunk``).
        span_id: unique id (``<pid hex>-<counter hex>``).
        parent_id: enclosing span's id, or ``None`` for a root span.
        start_ns / end_ns: ``time.perf_counter_ns()`` interval
            (``end_ns`` is 0 until the span finishes).
        attrs: free-form JSON-able attributes.
        pid / tid: recording process and thread.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start_ns", "end_ns",
        "attrs", "pid", "tid",
    )

    def __init__(
        self,
        name: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict] = None,
        span_id: Optional[str] = None,
        start_ns: int = 0,
        end_ns: int = 0,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id or _new_span_id()
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.attrs = attrs or {}
        self.pid = pid if pid is not None else os.getpid()
        self.tid = tid if tid is not None else threading.get_ident()

    @property
    def duration_ns(self) -> int:
        """Span duration (0 while unfinished)."""
        if not self.end_ns:
            return 0
        return max(0, self.end_ns - self.start_ns)

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def as_dict(self) -> Dict:
        """Serializable record (the JSONL exporter's line shape)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration_ns}ns)"
        )


class _NullSpan:
    """The shared no-op handle ``span()`` returns while tracing is off."""

    __slots__ = ()
    span_id = None
    parent_id = None
    name = ""
    attrs: Dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager driving one live span through the tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self.span.start_ns = time.perf_counter_ns()
        return self.span

    def __exit__(self, *exc_info) -> None:
        self.span.end_ns = time.perf_counter_ns()
        self._tracer._pop(self.span)
        self._tracer.record(self.span)
        return None


class Tracer:
    """Collects spans into a bounded, thread-safe buffer.

    Args:
        enabled: record spans (``False`` makes ``span()`` a no-op).
        max_spans: buffer capacity; overflow counts into ``dropped``.
    """

    def __init__(
        self, enabled: bool = False, max_spans: int = DEFAULT_MAX_SPANS
    ) -> None:
        self.max_spans = max(1, int(max_spans))
        self.trace_id: Optional[str] = None
        self.dropped = 0
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()
        if self._enabled:
            self.enable()

    # -- lifecycle ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True while spans are being recorded."""
        return self._enabled

    def enable(self) -> "Tracer":
        """Start (or restart) recording under a fresh trace id."""
        with self._lock:
            self._enabled = True
            if self.trace_id is None:
                self.trace_id = f"{os.getpid():x}-{time.time_ns():x}"
        return self

    def disable(self) -> "Tracer":
        """Stop recording (the buffer is kept until :meth:`clear`)."""
        self._enabled = False
        return self

    def clear(self) -> None:
        """Drop every buffered span and reset the trace id."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0
            self.trace_id = None

    # -- recording ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span(self) -> Optional[Span]:
        """This thread's innermost open span (None outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs):
        """Open a nested span: ``with tracer.span("engine.map", n=3):``.

        Returns a context manager yielding the live :class:`Span` (so the
        body can ``span.set(...)`` attributes), or the shared no-op
        handle when tracing is disabled.
        """
        if not self._enabled:
            return NULL_SPAN
        parent = self.current_span()
        return _SpanHandle(self, Span(
            name,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs or None,
        ))

    def record(self, span: Span) -> None:
        """Append one finished span to the buffer (bounded)."""
        if not self._enabled:
            return
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def adopt(
        self,
        records: Iterable[Dict],
        parent_id: Optional[str] = None,
    ) -> List[Span]:
        """Fold worker-recorded span dictionaries into this trace.

        Each record needs ``name``/``start_ns``/``end_ns`` (and may carry
        ``span_id``/``pid``/``tid``/``attrs``); a record's own span id is
        preserved when present — span ids embed the recording pid, so a
        worker-side hierarchy (e.g. physical-pipeline stages nested under
        a map item) keeps its internal links — and every adopted root is
        re-parented under ``parent_id``, so worker spans nest under the
        parent's dispatch span.
        """
        adopted: List[Span] = []
        for record in records:
            span = Span(
                record["name"],
                parent_id=record.get("parent_id") or parent_id,
                attrs=dict(record.get("attrs") or {}),
                span_id=record.get("span_id"),
                start_ns=int(record["start_ns"]),
                end_ns=int(record["end_ns"]),
                pid=record.get("pid"),
                tid=record.get("tid"),
            )
            self.record(span)
            adopted.append(span)
        return adopted

    # -- reading --------------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """A copy of the buffered spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)


#: The process-wide tracer every instrumentation site records into.
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until :func:`configure_tracing`)."""
    return _GLOBAL_TRACER


def configure_tracing(
    enabled: bool = True, max_spans: int = DEFAULT_MAX_SPANS
) -> Tracer:
    """(Re)configure the process-wide tracer and return it.

    Enabling clears any previous buffer and starts a fresh trace id, so
    each ``repro trace`` invocation exports exactly its own spans;
    disabling stops recording and drops the buffer.
    """
    tracer = _GLOBAL_TRACER
    tracer.disable()
    tracer.clear()
    tracer.max_spans = max(1, int(max_spans))
    if enabled:
        tracer.enable()
    return tracer


def worker_span_record(
    name: str, start_ns: int, end_ns: int, **attrs
) -> Dict:
    """A plain span dictionary a worker process ships back for adoption.

    Workers never touch the parent's tracer object — they return these
    records on the result queue and the parent calls
    :meth:`Tracer.adopt`.
    """
    return {
        "name": name,
        "start_ns": int(start_ns),
        "end_ns": int(end_ns),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "attrs": attrs,
    }
