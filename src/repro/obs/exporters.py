"""Trace exporters: JSONL span records and Chrome ``trace_event`` JSON.

Both exporters write atomically (temp file + ``os.replace``, the same
idiom as :func:`repro.reporting.export.export_json`) so a crashed or
interrupted run never leaves a half-written trace behind.

* :func:`export_jsonl` — one ``Span.as_dict()`` JSON object per line;
  trivially greppable and streamable.
* :func:`export_chrome` — the Chrome ``trace_event`` document format
  (``{"traceEvents": [...]}`` with complete ``"ph": "X"`` events),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev — drag
  the file into either and the nested spans render as a flame chart
  per process/thread track.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from .trace import Span


def _atomic_write(path: Union[str, Path], payload: str) -> Path:
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".",
        prefix=f".{path.name}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def export_jsonl(spans: Iterable[Span], path: Union[str, Path]) -> Path:
    """Write spans as JSON Lines (one span dictionary per line)."""
    lines = [json.dumps(span.as_dict(), sort_keys=True) for span in spans]
    payload = "\n".join(lines)
    if payload:
        payload += "\n"
    return _atomic_write(path, payload)


def span_to_trace_event(span: Span) -> Dict:
    """One span as a Chrome ``trace_event`` complete (``"ph": "X"``) event.

    ``ts``/``dur`` are microseconds (the format's unit); span ancestry
    travels in ``args`` since the viewer nests purely by time overlap
    within a pid/tid track.
    """
    event = {
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",
        "ts": span.start_ns / 1000.0,
        "dur": max(0, span.end_ns - span.start_ns) / 1000.0,
        "pid": span.pid,
        "tid": span.tid,
        "args": {"span_id": span.span_id, "parent_id": span.parent_id},
    }
    if span.attrs:
        event["args"].update(span.attrs)
    return event


def export_chrome(
    spans: Iterable[Span],
    path: Union[str, Path],
    trace_id: Optional[str] = None,
) -> Path:
    """Write spans as a Chrome ``trace_event`` JSON document."""
    document = {
        "traceEvents": [span_to_trace_event(span) for span in spans],
        "displayTimeUnit": "ms",
    }
    if trace_id is not None:
        document["otherData"] = {"trace_id": trace_id}
    return _atomic_write(path, json.dumps(document, indent=1))
