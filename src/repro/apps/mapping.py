"""Mapping network layers onto an ACIM macro.

A layer's weight matrix (``input_length`` x ``output_count``) is tiled over
the macro: the accumulation dimension folds onto the column's dot-product
length (H / L products per conversion) and the output dimension onto the W
columns.  The mapper reports how many tiles each layer needs, how many
macro cycles one inference takes, and how many partial sums have to be
accumulated digitally (which degrades the effective output SNR relative to
a single analog accumulation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.errors import ReproError
from repro.arch.spec import ACIMDesignSpec
from repro.apps.networks import NetworkLayer, NetworkModel


@dataclass(frozen=True)
class LayerMapping:
    """Result of mapping one layer onto the macro.

    Attributes:
        layer: the mapped layer.
        row_tiles: tiles along the accumulation dimension.
        column_tiles: tiles along the output dimension.
        weight_loads: how many times the array must be (re)loaded to hold the
            layer's weights (1 when the whole layer fits at once).
        cycles_per_inference: macro MAC+conversion cycles per inference.
        digital_accumulations: partial sums combined digitally per output.
        utilization: fraction of the macro's bit cells holding useful weights.
    """

    layer: NetworkLayer
    row_tiles: int
    column_tiles: int
    weight_loads: int
    cycles_per_inference: int
    digital_accumulations: int
    utilization: float


@dataclass
class MappingReport:
    """Mapping of a full network onto one design point.

    Attributes:
        spec: the macro design point used.
        network: the mapped network.
        layers: per-layer mapping results.
    """

    spec: ACIMDesignSpec
    network: NetworkModel
    layers: List[LayerMapping] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Macro cycles per inference over the whole network."""
        return sum(mapping.cycles_per_inference for mapping in self.layers)

    @property
    def total_weight_loads(self) -> int:
        """Array weight reloads per inference over the whole network."""
        return sum(mapping.weight_loads for mapping in self.layers)

    @property
    def mean_utilization(self) -> float:
        """MAC-weighted average array utilisation."""
        total_macs = sum(m.layer.macs_per_inference for m in self.layers)
        if total_macs == 0:
            return 0.0
        return sum(
            m.utilization * m.layer.macs_per_inference for m in self.layers
        ) / total_macs

    @property
    def max_digital_accumulations(self) -> int:
        """Worst-case digital partial-sum depth across layers."""
        return max((m.digital_accumulations for m in self.layers), default=1)


class ArrayMapper:
    """Tiles network layers over an ACIM design point."""

    def __init__(self, spec: ACIMDesignSpec) -> None:
        spec.validate()
        self.spec = spec

    def map_layer(self, layer: NetworkLayer) -> LayerMapping:
        """Map one layer onto the macro."""
        spec = self.spec
        analog_length = spec.dot_product_length
        # Rows of one tile: each conversion accumulates H/L products, and the
        # L rows of a local array hold different filters/time-steps, so one
        # column stores up to H weights of the same output split over L
        # contexts; the accumulation dimension maps onto the H/L products.
        row_tiles = max(1, math.ceil(layer.input_length / analog_length))
        column_tiles = max(1, math.ceil(layer.output_count / spec.width))
        weight_capacity = spec.array_size
        weight_loads = max(1, math.ceil(layer.weight_count / weight_capacity))
        cycles = layer.vectors_per_inference * row_tiles * column_tiles
        used_cells = min(layer.weight_count, weight_capacity)
        utilization = used_cells / weight_capacity
        return LayerMapping(
            layer=layer,
            row_tiles=row_tiles,
            column_tiles=column_tiles,
            weight_loads=weight_loads,
            cycles_per_inference=cycles,
            digital_accumulations=row_tiles,
            utilization=utilization,
        )

    def map_network(self, network: NetworkModel) -> MappingReport:
        """Map every layer of ``network``."""
        if not network.layers:
            raise ReproError(f"network {network.name!r} has no layers")
        report = MappingReport(spec=self.spec, network=network)
        for layer in network.layers:
            report.layers.append(self.map_layer(layer))
        return report
