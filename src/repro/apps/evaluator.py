"""Application-level evaluation of a design point on a network.

Combines the mapping report with the estimation model to produce the
numbers an accelerator architect cares about: inference latency, energy per
inference, achievable inferences/second, and the effective output SNR after
digital accumulation of partial sums — plus a verdict on whether the macro
meets the network's accuracy (SNR) and real-time requirements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.spec import ACIMDesignSpec
from repro.apps.mapping import ArrayMapper, MappingReport
from repro.apps.networks import NetworkModel
from repro.model.estimator import ACIMEstimator, ACIMMetrics


@dataclass(frozen=True)
class ApplicationResult:
    """Evaluation of one (network, design point) pair.

    Attributes:
        spec: the macro design point.
        network_name: evaluated network.
        macro_metrics: the macro-level estimation metrics.
        latency_seconds: inference latency.
        inferences_per_second: achievable inference rate.
        energy_per_inference: energy per inference in joules.
        effective_snr_db: output SNR after digital partial-sum accumulation.
        meets_snr_requirement: True when the effective SNR satisfies the
            network's minimum.
        meets_throughput_requirement: True when the inference rate satisfies
            the network's real-time target.
        mean_utilization: MAC-weighted array utilisation of the mapping.
    """

    spec: ACIMDesignSpec
    network_name: str
    macro_metrics: ACIMMetrics
    latency_seconds: float
    inferences_per_second: float
    energy_per_inference: float
    effective_snr_db: float
    meets_snr_requirement: bool
    meets_throughput_requirement: bool
    mean_utilization: float

    @property
    def meets_all_requirements(self) -> bool:
        """True when both the accuracy and the real-time targets are met."""
        return self.meets_snr_requirement and self.meets_throughput_requirement

    def as_dict(self) -> dict:
        """Flat dictionary for report tables."""
        return {
            "network": self.network_name,
            "H": self.spec.height,
            "W": self.spec.width,
            "L": self.spec.local_array_size,
            "B_ADC": self.spec.adc_bits,
            "latency_ms": self.latency_seconds * 1e3,
            "inferences_per_s": self.inferences_per_second,
            "energy_uJ_per_inference": self.energy_per_inference * 1e6,
            "effective_snr_db": self.effective_snr_db,
            "meets_snr": self.meets_snr_requirement,
            "meets_rate": self.meets_throughput_requirement,
            "utilization": self.mean_utilization,
        }


class ApplicationEvaluator:
    """Evaluates design points against application networks."""

    def __init__(self, estimator: Optional[ACIMEstimator] = None) -> None:
        self.estimator = estimator or ACIMEstimator()

    def evaluate(self, spec: ACIMDesignSpec, network: NetworkModel) -> ApplicationResult:
        """Map ``network`` onto ``spec`` and compute application metrics."""
        mapping = ArrayMapper(spec).map_network(network)
        metrics = self.estimator.evaluate(spec)
        return self._combine(spec, network, mapping, metrics)

    def _combine(
        self,
        spec: ACIMDesignSpec,
        network: NetworkModel,
        mapping: MappingReport,
        metrics: ACIMMetrics,
    ) -> ApplicationResult:
        timing = self.estimator.throughput_model.breakdown(spec)
        cycle_time = timing.cycle_time
        latency = mapping.total_cycles * cycle_time
        # Energy: every cycle performs (H/L) * W MACs whether or not all of
        # them hold useful weights, so energy scales with total cycles and
        # the macro's per-MAC energy.
        macs_per_cycle = timing.macs_per_cycle
        energy = mapping.total_cycles * macs_per_cycle * metrics.energy_per_mac
        inferences_per_second = 1.0 / latency if latency > 0 else float("inf")
        # Digital accumulation of D partial sums adds their (independent)
        # error variances while the signal adds coherently, costing about
        # 10*log10(D) of SNR in the worst case of equal partial magnitudes.
        penalty_db = 10.0 * math.log10(mapping.max_digital_accumulations)
        effective_snr = metrics.snr_db - penalty_db
        return ApplicationResult(
            spec=spec,
            network_name=network.name,
            macro_metrics=metrics,
            latency_seconds=latency,
            inferences_per_second=inferences_per_second,
            energy_per_inference=energy,
            effective_snr_db=effective_snr,
            meets_snr_requirement=effective_snr >= network.min_snr_db,
            meets_throughput_requirement=(
                inferences_per_second >= network.target_inferences_per_second
            ),
            mean_utilization=mapping.mean_utilization,
        )
