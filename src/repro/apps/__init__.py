"""Application-level mapping and evaluation (paper Figure 1 motivation).

Different applications — transformers, CNNs, SNNs — stress different axes
of the SNR / throughput / energy / area trade-off.  This package maps neural
network layers onto a generated ACIM macro (tiling the weight matrices over
the array), evaluates the resulting latency, energy and effective SNR, and
lets the examples demonstrate why a single fixed macro cannot serve every
scenario while the EasyACIM Pareto set can.
"""

from repro.apps.networks import (
    LayerKind,
    NetworkLayer,
    NetworkModel,
    example_cnn,
    example_snn,
    example_transformer,
)
from repro.apps.mapping import ArrayMapper, LayerMapping, MappingReport
from repro.apps.evaluator import ApplicationEvaluator, ApplicationResult

__all__ = [
    "LayerKind",
    "NetworkLayer",
    "NetworkModel",
    "example_cnn",
    "example_snn",
    "example_transformer",
    "ArrayMapper",
    "LayerMapping",
    "MappingReport",
    "ApplicationEvaluator",
    "ApplicationResult",
]
