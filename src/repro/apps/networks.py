"""Neural-network layer descriptors for the application studies.

The descriptors capture only what the mapper needs: the shape of each
layer's matrix-vector products (rows = accumulation length, columns =
output neurons), how many such products an inference performs, and the
accuracy sensitivity of the network (minimum SNR for acceptable accuracy).
Three example networks mirror the paper's Figure-1 scenarios: an edge CNN,
a small transformer block and a spiking network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import ReproError


class LayerKind(enum.Enum):
    """Layer categories the mapper understands."""

    CONVOLUTION = "convolution"
    FULLY_CONNECTED = "fully_connected"
    ATTENTION_PROJECTION = "attention_projection"
    SPIKING_DENSE = "spiking_dense"


@dataclass(frozen=True)
class NetworkLayer:
    """One layer expressed as a batch of matrix-vector products.

    Attributes:
        name: layer name.
        kind: layer category.
        input_length: accumulation (dot-product) length per output.
        output_count: number of outputs (columns of the weight matrix).
        vectors_per_inference: how many input vectors one inference pushes
            through the layer (e.g. spatial positions of a convolution,
            tokens of a transformer block).
        weight_bits / activation_bits: nominal precisions.
    """

    name: str
    kind: LayerKind
    input_length: int
    output_count: int
    vectors_per_inference: int = 1
    weight_bits: int = 1
    activation_bits: int = 1

    def __post_init__(self) -> None:
        if self.input_length < 1 or self.output_count < 1:
            raise ReproError(f"layer {self.name!r} must have positive dimensions")
        if self.vectors_per_inference < 1:
            raise ReproError(f"layer {self.name!r} needs at least one vector")

    @property
    def macs_per_inference(self) -> int:
        """Total multiply-accumulates one inference performs in this layer."""
        return self.input_length * self.output_count * self.vectors_per_inference

    @property
    def weight_count(self) -> int:
        """Number of weights (bit cells, at 1-bit weights) the layer needs."""
        return self.input_length * self.output_count


@dataclass(frozen=True)
class NetworkModel:
    """A network: an ordered list of layers plus accuracy requirements.

    Attributes:
        name: model name.
        layers: the layers in execution order.
        min_snr_db: minimum compute SNR for acceptable task accuracy.
        target_inferences_per_second: real-time requirement of the scenario.
    """

    name: str
    layers: List[NetworkLayer] = field(default_factory=list)
    min_snr_db: float = 15.0
    target_inferences_per_second: float = 30.0

    @property
    def total_macs(self) -> int:
        """MACs per inference over the whole network."""
        return sum(layer.macs_per_inference for layer in self.layers)

    @property
    def total_weights(self) -> int:
        """Weights over the whole network."""
        return sum(layer.weight_count for layer in self.layers)


def example_cnn() -> NetworkModel:
    """A small edge-class CNN (keyword spotting / tiny image classifier)."""
    layers = [
        NetworkLayer("conv1", LayerKind.CONVOLUTION, input_length=27,
                     output_count=32, vectors_per_inference=1024),
        NetworkLayer("conv2", LayerKind.CONVOLUTION, input_length=288,
                     output_count=64, vectors_per_inference=256),
        NetworkLayer("conv3", LayerKind.CONVOLUTION, input_length=576,
                     output_count=64, vectors_per_inference=64),
        NetworkLayer("fc", LayerKind.FULLY_CONNECTED, input_length=1024,
                     output_count=10, vectors_per_inference=1),
    ]
    return NetworkModel(
        name="edge_cnn",
        layers=layers,
        min_snr_db=18.0,
        target_inferences_per_second=30.0,
    )


def example_transformer() -> NetworkModel:
    """One block of a small transformer (the accuracy-sensitive scenario)."""
    d_model, tokens = 256, 64
    layers = [
        NetworkLayer("q_proj", LayerKind.ATTENTION_PROJECTION, d_model, d_model,
                     vectors_per_inference=tokens, weight_bits=4, activation_bits=4),
        NetworkLayer("k_proj", LayerKind.ATTENTION_PROJECTION, d_model, d_model,
                     vectors_per_inference=tokens, weight_bits=4, activation_bits=4),
        NetworkLayer("v_proj", LayerKind.ATTENTION_PROJECTION, d_model, d_model,
                     vectors_per_inference=tokens, weight_bits=4, activation_bits=4),
        NetworkLayer("out_proj", LayerKind.ATTENTION_PROJECTION, d_model, d_model,
                     vectors_per_inference=tokens, weight_bits=4, activation_bits=4),
        NetworkLayer("ffn_up", LayerKind.FULLY_CONNECTED, d_model, 4 * d_model,
                     vectors_per_inference=tokens, weight_bits=4, activation_bits=4),
        NetworkLayer("ffn_down", LayerKind.FULLY_CONNECTED, 4 * d_model, d_model,
                     vectors_per_inference=tokens, weight_bits=4, activation_bits=4),
    ]
    return NetworkModel(
        name="tiny_transformer_block",
        layers=layers,
        min_snr_db=30.0,
        target_inferences_per_second=10.0,
    )


def example_snn() -> NetworkModel:
    """A spiking dense network (the energy-first, accuracy-relaxed scenario)."""
    layers = [
        NetworkLayer("dense1", LayerKind.SPIKING_DENSE, input_length=256,
                     output_count=128, vectors_per_inference=16),
        NetworkLayer("dense2", LayerKind.SPIKING_DENSE, input_length=128,
                     output_count=64, vectors_per_inference=16),
        NetworkLayer("dense3", LayerKind.SPIKING_DENSE, input_length=64,
                     output_count=10, vectors_per_inference=16),
    ]
    return NetworkModel(
        name="spiking_mlp",
        layers=layers,
        min_snr_db=10.0,
        target_inferences_per_second=100.0,
    )
