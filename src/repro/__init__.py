"""EasyACIM reproduction: end-to-end automated analog computing-in-memory.

This library reproduces the system described in *"EasyACIM: An End-to-End
Automated Analog CIM with Synthesizable Architecture and Agile Design Space
Exploration"* (DAC 2024): a synthesizable charge-redistribution ACIM
architecture, an analytical SNR / throughput / energy / area estimation
model, an NSGA-II design-space explorer, and a template-based hierarchical
placement-and-routing flow that generates macro layouts — together with the
behavioral simulation, baselines and benchmarks needed to regenerate the
paper's evaluation.

Quick start — every workflow goes through one typed session
(``docs/api.md``)::

    from repro import ExploreRequest, FlowRequest, Session, SessionConfig

    with Session.from_config(SessionConfig(backend="process")) as session:
        explored = session.explore(ExploreRequest(array_size=16 * 1024))
        print(explored.payload["pareto_size"], "Pareto solutions")

        flowed = session.flow(FlowRequest(array_size=1024, min_snr_db=10.0))
        print(flowed.artifacts["result"].summary())

Requests and results are JSON-serializable (``to_dict``/``from_dict``), so
the same description runs from Python, the CLI (``python -m repro``) or a
job queue.  The pre-1.1 front doors (``EasyACIMFlow``,
``DesignSpaceExplorer``, ``CampaignManager``) were removed in 1.2.0 after
their one-release deprecation window; the session layer is the single
supported entry point.

The subpackages are usable on their own:

* :mod:`repro.api` — the typed session layer every consumer goes through,
* :mod:`repro.arch` — the synthesizable architecture and its constraints,
* :mod:`repro.model` — the performance estimation model (Equations 2-11),
* :mod:`repro.dse` — Pareto tools and the NSGA-II explorer (Equation 12),
* :mod:`repro.engine` — the batched/parallel/cached evaluation engine every
  evaluation consumer routes through (``docs/engine.md``),
* :mod:`repro.store` — the persistent result store and resumable
  exploration campaigns (``docs/campaigns.md``),
* :mod:`repro.sim` — behavioral QR / SAR ADC simulation and Monte-Carlo SNR,
* :mod:`repro.cells`, :mod:`repro.technology`, :mod:`repro.netlist`,
  :mod:`repro.layout`, :mod:`repro.placement`, :mod:`repro.routing` — the
  physical-design substrate,
* :mod:`repro.physical` — the staged, reuse-aware physical pipeline and
  the content-addressed macro library (``docs/physical.md``),
* :mod:`repro.flow` — the end-to-end flow and the baseline flows,
* :mod:`repro.apps` — application mapping (CNN / transformer / SNN),
* :mod:`repro.sota` — published reference designs for the comparison,
* :mod:`repro.serve` — the multi-tenant HTTP/job-queue server over one
  shared session (``docs/serving.md``).
"""

from repro.api import (
    ApiRequest,
    ApiResult,
    CampaignRequest,
    EstimateRequest,
    ExploreRequest,
    FlowRequest,
    LayoutRequest,
    LibraryRequest,
    QueryRequest,
    Session,
    SessionConfig,
    ValidateSnrRequest,
    request_from_dict,
)
from repro.arch.spec import ACIMDesignSpec
from repro.arch.architecture import SynthesizableACIM
from repro.dse.distill import DistillationCriteria
from repro.engine import EngineStats, EvaluationCache, EvaluationEngine
from repro.dse.explorer import ExplorationResult
from repro.dse.nsga2 import NSGA2Config
from repro.errors import ReproError
from repro.flow.controller import FlowInputs, FlowResult
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.cells.library import CellLibrary, default_cell_library
from repro.model.estimator import ACIMEstimator, ACIMMetrics, ModelParameters
from repro.physical import MacroLibrary, PhysicalPipeline, PipelineStats
from repro.sim.montecarlo import MonteCarloSnr
from repro.store import CampaignResult, ResultStore
from repro.technology.tech import Technology, generic28

__version__ = "1.3.0"

__all__ = [
    # The typed public API (the supported entry point).
    "ApiRequest",
    "ApiResult",
    "CampaignRequest",
    "EstimateRequest",
    "ExploreRequest",
    "FlowRequest",
    "LayoutRequest",
    "LibraryRequest",
    "QueryRequest",
    "Session",
    "SessionConfig",
    "ValidateSnrRequest",
    "request_from_dict",
    # Domain objects and building blocks.
    "ACIMDesignSpec",
    "SynthesizableACIM",
    "DistillationCriteria",
    "EngineStats",
    "EvaluationCache",
    "EvaluationEngine",
    "ExplorationResult",
    "NSGA2Config",
    "FlowInputs",
    "FlowResult",
    "LayoutGenerator",
    "TemplateNetlistGenerator",
    "CellLibrary",
    "default_cell_library",
    "ACIMEstimator",
    "ACIMMetrics",
    "ModelParameters",
    "MonteCarloSnr",
    "CampaignResult",
    "MacroLibrary",
    "PhysicalPipeline",
    "PipelineStats",
    "ReproError",
    "ResultStore",
    "Technology",
    "generic28",
    "__version__",
]
